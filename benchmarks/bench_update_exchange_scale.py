"""Update-exchange scaling benchmark: the perf-trajectory baseline.

Drives multi-peer publish / update-exchange workloads from the synthetic
workload generator (Section 6.1) and writes ``BENCH_update_exchange.json``
so the repository finally has a measured perf trajectory:

* **publish** — base entries at every peer, one full exchange (Figure 5's
  "time to join" shape);
* **incremental insertion** — a small batch of fresh entries per peer
  propagated with the insertion delta rules (Figures 7/8's common case,
  and the workload the evaluation hot path is tuned for).

Per cell the JSON records wall seconds, semi-naive rounds, rule
applications, and the engine's plan-cache hit rate.  Run directly::

    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py
    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py --quick

``--baseline FILE`` embeds a previously saved run (e.g. from the commit
before an optimization) under ``"baseline"`` and prints the speedups.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-update-exchange@1"


def _engine_stats(cdss) -> dict[str, float] | None:
    """Cumulative evaluation stats, when the engine exposes them.

    Uses ``EvaluationResult.counters()`` where present; the getattr
    fallback lets the same script measure older trees (for baselines).
    """
    engine = cdss.system().engine
    stats = getattr(engine, "stats", None)
    if stats is None:
        return None
    if hasattr(stats, "counters"):
        return stats.counters()
    return {
        "rounds": stats.rounds,
        "rule_applications": stats.rule_applications,
        "plan_cache_hits": getattr(stats, "plan_cache_hits", 0),
        "plan_cache_misses": getattr(stats, "plan_cache_misses", 0),
    }


def _stats_delta(
    after: dict[str, float] | None, before: dict[str, float] | None
) -> dict[str, float]:
    # Mirrors EvaluationResult.counters_delta; kept local so the script
    # also runs against trees that predate that helper.
    if after is None:
        return {}
    before = before or {k: 0 for k in after}
    delta = {key: after[key] - before.get(key, 0) for key in after}
    probes = delta["plan_cache_hits"] + delta["plan_cache_misses"]
    delta["plan_cache_hit_rate"] = (
        delta["plan_cache_hits"] / probes if probes else 0.0
    )
    return delta


def run_cell(
    peers: int, base_per_peer: int, insert_per_peer: int, seed: int
) -> dict[str, object]:
    """One benchmark cell: publish a base load, then time an incremental
    insertion exchange on top of it."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()

    generator.record_insertions(cdss, generator.insertions(base_per_peer))
    before = _engine_stats(cdss)
    start = time.perf_counter()
    cdss.update_exchange()
    publish_seconds = time.perf_counter() - start
    publish_stats = _stats_delta(_engine_stats(cdss), before)

    generator.record_insertions(cdss, generator.insertions(insert_per_peer))
    before = _engine_stats(cdss)
    start = time.perf_counter()
    cdss.update_exchange()
    incremental_seconds = time.perf_counter() - start
    incremental_stats = _stats_delta(_engine_stats(cdss), before)

    return {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "insert_per_peer": insert_per_peer,
        "total_tuples": cdss.system().total_tuples(),
        "publish": {"seconds": publish_seconds, **publish_stats},
        "incremental_insertion": {
            "seconds": incremental_seconds,
            **incremental_stats,
        },
    }


def _median_cell(samples: list[dict[str, object]]) -> dict[str, object]:
    """The sampled cell whose incremental wall time is the median one —
    keeping seconds and engine counters from the same run."""
    ordered = sorted(
        samples,
        key=lambda c: c["incremental_insertion"]["seconds"],
    )
    cell = ordered[len(ordered) // 2]
    cell["samples"] = len(samples)
    cell["incremental_insertion"]["seconds_all"] = sorted(
        c["incremental_insertion"]["seconds"] for c in samples
    )
    return cell


def run_benchmark(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
) -> dict[str, object]:
    cells = []
    for peers in peer_counts:
        samples = [
            run_cell(peers, base_per_peer, insert_per_peer, seed)
            for _ in range(max(1, repeat))
        ]
        cell = _median_cell(samples)
        cells.append(cell)
        print(
            f"  peers={peers:3d}  publish={cell['publish']['seconds']:.3f}s"
            f"  incremental={cell['incremental_insertion']['seconds']:.3f}s"
            f"  hit_rate="
            f"{cell['incremental_insertion'].get('plan_cache_hit_rate', 0.0):.2f}"
        )
    return {
        "format": RESULT_FORMAT,
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "insert_per_peer": insert_per_peer,
            "seed": seed,
            "repeat": repeat,
        },
        "cells": cells,
    }


def _speedups(
    baseline: dict[str, object], current: dict[str, object]
) -> dict[str, dict[str, float]]:
    """Per-peer-count baseline/current wall-time ratios, keyed by phase."""
    by_peers = {
        cell["peers"]: cell for cell in baseline.get("cells", ())
    }
    out: dict[str, dict[str, float]] = {}
    for cell in current["cells"]:
        base = by_peers.get(cell["peers"])
        if base is None:
            continue
        for phase in ("publish", "incremental_insertion"):
            current_seconds = cell[phase]["seconds"]
            if current_seconds <= 0:
                continue
            out.setdefault(phase, {})[str(cell["peers"])] = (
                base[phase]["seconds"] / current_seconds
            )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs",
    )
    parser.add_argument("--peers", type=int, nargs="*", default=None)
    parser.add_argument("--base", type=int, default=None)
    parser.add_argument("--insert", type=int, default=None)
    parser.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="samples per cell, median reported (default: 3, or 1 with --quick)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed a previously saved result file and report speedups",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "result path (default: BENCH_update_exchange.json at the repo "
            "root; --quick writes BENCH_update_exchange_quick.json so smoke "
            "runs never clobber the committed perf trajectory)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = (
            "BENCH_update_exchange_quick.json"
            if args.quick
            else "BENCH_update_exchange.json"
        )
        args.out = REPO_ROOT / name

    if args.quick:
        peer_counts = tuple(args.peers or (2, 3))
        base = args.base if args.base is not None else 20
        insert = args.insert if args.insert is not None else 2
        repeat = args.repeat if args.repeat is not None else 1
    else:
        peer_counts = tuple(args.peers or (2, 5, 10))
        base = args.base if args.base is not None else 400
        insert = args.insert if args.insert is not None else 20
        repeat = args.repeat if args.repeat is not None else 3

    print(
        f"update-exchange scale benchmark: peers={peer_counts} "
        f"base={base}/peer insert={insert}/peer repeat={repeat}"
    )
    result = run_benchmark(
        peer_counts, base, insert, seed=args.seed, repeat=repeat
    )

    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        result["baseline"] = baseline
        result["speedup_vs_baseline"] = _speedups(baseline, result)
        for phase, ratios in result["speedup_vs_baseline"].items():
            rendered = ", ".join(
                f"{peers} peers: {ratio:.2f}x"
                for peers, ratio in ratios.items()
            )
            print(f"  speedup[{phase}]: {rendered}")

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
