"""Update-exchange + query-serving benchmarks: the perf-trajectory baseline.

Drives multi-peer publish / update-exchange workloads from the synthetic
workload generator (Section 6.1) and writes ``BENCH_update_exchange.json``
so the repository has a measured perf trajectory:

* **publish** — base entries at every peer, one full exchange (Figure 5's
  "time to join" shape);
* **incremental insertion** — a small batch of fresh entries per peer
  propagated with the insertion delta rules (Figures 7/8's common case,
  and the workload the evaluation hot path is tuned for);
* **deletion** — the same batch deleted again and propagated with
  PropagateDelete (Figure 9's shape; the per-row-churn workload the
  deferred index policy targets).

The exchange series runs under **both index maintenance policies**
(``eager`` and ``deferred``, see ``repro.storage.indexes``) and records
the eager/deferred wall-time ratio per phase (``policy_speedup``), plus a
smaller **string-dataset** series (the paper's SWISS-PROT strings instead
of integer hashes) under both policies, plus a **shard-parallel workers
series** (``workers ∈ {1, 2, 4}`` by default, see ``repro.parallel``)
re-running the exchange phases under an N-process evaluation pool with
``speedup_vs_workers1`` ratios and the host ``cpu_count`` recorded — N
workers cannot beat 1 without N cores, so on a 1-CPU host the series
measures the replication protocol's overhead rather than a speedup.

A second series exercises the serving-side query subsystem and writes
``BENCH_query.json``:

* **prepared** — one ``PreparedQuery`` with a parameter on the key
  column, re-executed with a new binding per repetition (zero replanning:
  the recorded plan-cache hit rate must be 1.0);
* **adhoc** — the same lookups as one-shot ``cdss.query`` text queries
  (parse + rewrite + plan every time);
* **where_pushdown** vs **where_callable** — the same selection through
  ``RelationView.where`` with a structured predicate (indexed probe)
  vs. the deprecated Python-callable slow path (full scan).

Per cell the JSON records wall seconds, semi-naive rounds, rule
applications, and the engine's plan-cache hit rate.  Run directly::

    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py
    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py --quick
    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py --only query

A **mixed-churn series** (``"mixed_churn"`` in the exchange JSON)
interleaves insertion, deletion, and trust-revocation batches — plus a
``combined`` batch staging all three in one publish — against a live
system, recording per-phase medians across batches.  Revocations delete
*derived* (non-locally-published) output rows, which ``publish`` turns
into rejection insertions: the trust-revocation path of the update
exchange.  This is the deletion-shaped workload the weighted delta core
targets; ``speedup_vs_pr6`` compares it against an embedded pre-refactor
baseline.

``--baseline FILE`` embeds a previously saved run (e.g. from the commit
before an optimization) under ``"baseline"`` and prints the speedups
(exchange series only).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import (  # noqa: E402
    efficiency_footer,
    efficiency_snapshot,
    phase_efficiency_table,
    rows_per_cpu_second,
)
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-update-exchange@5"
QUERY_RESULT_FORMAT = "repro/bench-query@1"

INDEX_POLICIES = ("eager", "deferred")
PRIMARY_POLICY = "deferred"  # the shipped default; fills the legacy "cells"
PHASES = (
    "publish",
    "incremental_insertion",
    "deletion",
    "serving",
    "serving_cold",
)
# The interleaved-churn phases: one update-exchange timing per batch kind.
MIXED_PHASES = ("insertion", "deletion", "revocation", "combined")


def _timed(fn) -> float:
    """Wall seconds for ``fn()`` with the GC quiesced.

    Collection runs *between* measured phases instead of inside them — GC
    pauses landing inside one policy's phase and not the other's were the
    dominant run-to-run variance at these phase durations.
    """
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    try:
        fn()
    finally:
        seconds = time.perf_counter() - start
        gc.enable()
    return seconds


def _timed_cpu(fn) -> tuple[float, float]:
    """(wall seconds, process CPU seconds) for ``fn()``, GC quiesced.

    The CPU figure feeds the per-phase ``cpu_seconds`` efficiency metric
    (work-per-resource, per the greenness papers in PAPERS.md).
    """
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        fn()
    finally:
        cpu_seconds = time.process_time() - cpu_start
        seconds = time.perf_counter() - start
        gc.enable()
    return seconds, cpu_seconds


def _engine_stats(cdss) -> dict[str, float] | None:
    """Cumulative evaluation stats, when the engine exposes them.

    Uses ``EvaluationResult.counters()`` where present; the getattr
    fallback lets the same script measure older trees (for baselines).
    """
    engine = cdss.system().engine
    stats = getattr(engine, "stats", None)
    if stats is None:
        return None
    if hasattr(stats, "counters"):
        return stats.counters()
    return {
        "rounds": stats.rounds,
        "rule_applications": stats.rule_applications,
        "plan_cache_hits": getattr(stats, "plan_cache_hits", 0),
        "plan_cache_misses": getattr(stats, "plan_cache_misses", 0),
    }


def _stats_delta(
    after: dict[str, float] | None, before: dict[str, float] | None
) -> dict[str, float]:
    # Mirrors EvaluationResult.counters_delta; kept local so the script
    # also runs against trees that predate that helper.
    if after is None:
        return {}
    before = before or {k: 0 for k in after}
    delta = {key: after[key] - before.get(key, 0) for key in after}
    probes = delta["plan_cache_hits"] + delta["plan_cache_misses"]
    delta["plan_cache_hit_rate"] = (
        delta["plan_cache_hits"] / probes if probes else 0.0
    )
    return delta


def _build_cdss(generator, index_policy: str, workers: int | None = None):
    """Build the workload CDSS under ``index_policy`` (+ worker count).

    Feature-detected by signature, not by catching TypeError — a
    swallowed unrelated TypeError would silently run both policy series
    against the default configuration and fabricate ~1.0x comparisons.
    Older trees (baseline measurement) predate index policies / parallel
    evaluation and get the plain build.
    """
    from inspect import signature

    from repro.core.cdss import CDSS

    parameters = signature(CDSS.__init__).parameters
    kwargs = {}
    if "index_policy" in parameters:
        kwargs["index_policy"] = index_policy
    if workers is not None and "workers" in parameters:
        kwargs["workers"] = workers
    return generator.build_cdss(**kwargs)


def _prepare_serving_queries(cdss, generator) -> tuple[list, list]:
    """The serving mix: prepared indexed lookups on every relation.

    Executing each query once materializes its probe index on the live
    ``R__o`` table, so the exchange phases measure update propagation
    *while the system serves indexed reads* — the HTAP shape the
    index-maintenance policies differ on.  Returns ``(hot, cold)``:

    * **hot** — a key lookup per relation, re-served after every exchange
      phase (skewed OLTP-style traffic);
    * **cold** — lookups on two non-key attributes per relation, probed
      only once at the end of the cell (the long tail of query shapes
      whose indexes exist but see no traffic between exchanges).

    Eager maintenance patches every one of these indexes inside each
    exchange; the deferred barrier patches the hot ones and retires
    rebuild-scale cold debt to the (single) next probe.
    """
    from repro.api.query import Query, col, param

    hot: list = []
    cold: list = []
    for layout in generator.layouts:
        for part in range(len(layout.partitions)):
            view = cdss.relation(layout.relation_name(part))
            schema = view.schema
            for position, attr in enumerate(schema.attributes[:3]):
                query = cdss.prepare(
                    Query.scan(view).select(col(attr) == param("k"))
                )
                query.execute(k=None).to_rows()  # materialize the index
                (hot if position == 0 else cold).append(query)
    return hot, cold


def _serve(prepared: list[object], keys: list[object]) -> float:
    """Execute every serving query once per key; return wall seconds."""

    def read() -> None:
        for query in prepared:
            for key in keys:
                query.execute(k=key).to_rows()

    return _timed(read)


def run_cell(
    peers: int,
    base_per_peer: int,
    insert_per_peer: int,
    seed: int,
    index_policy: str = PRIMARY_POLICY,
    dataset: str = "integer",
    workers: int | None = None,
) -> dict[str, object]:
    """One benchmark cell: publish a base load under a serving workload,
    then time an incremental insertion exchange and a deletion exchange,
    re-serving the prepared queries after every phase."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset=dataset, seed=seed)
    )
    # Pin the worker count explicitly: passing None through would let the
    # CDSS resolve a REPRO_WORKERS environment default, silently running
    # (and mislabeling) a "sequential" series under a pool.
    workers = 1 if workers is None else workers
    cdss = _build_cdss(generator, index_policy, workers)
    hot_queries, cold_queries = _prepare_serving_queries(cdss, generator)
    serving_seconds = 0.0

    base_updates = generator.insertions(base_per_peer)
    serve_keys = [update.key for update in base_updates[:10]]
    generator.record_insertions(cdss, base_updates)
    before = _engine_stats(cdss)
    publish_seconds, publish_cpu = _timed_cpu(cdss.update_exchange)
    publish_stats = _stats_delta(_engine_stats(cdss), before)
    serving_seconds += _serve(hot_queries, serve_keys)

    generator.record_insertions(cdss, generator.insertions(insert_per_peer))
    before = _engine_stats(cdss)
    incremental_seconds, incremental_cpu = _timed_cpu(cdss.update_exchange)
    incremental_stats = _stats_delta(_engine_stats(cdss), before)
    serving_seconds += _serve(hot_queries, serve_keys)

    total_tuples = cdss.system().total_tuples()

    # Deletion workload: the freshly inserted entries leave again through
    # PropagateDelete (per-row provenance/output churn).
    generator.record_deletions(cdss, generator.deletions(insert_per_peer))
    before = _engine_stats(cdss)
    deletion_seconds, deletion_cpu = _timed_cpu(cdss.update_exchange)
    deletion_stats = _stats_delta(_engine_stats(cdss), before)
    serving_seconds += _serve(hot_queries, serve_keys)

    # The cold tail, exactly once: pays any maintenance debt the deferred
    # barrier retired to the next probe, so the phase comparison cannot
    # hide deferred work — it lands here, visibly.
    cold_seconds = _serve(cold_queries, serve_keys)

    return {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "insert_per_peer": insert_per_peer,
        "index_policy": index_policy,
        "dataset": dataset,
        "workers": workers,
        "serving_queries": {
            "hot": len(hot_queries),
            "cold": len(cold_queries),
        },
        "total_tuples": total_tuples,
        "publish": {
            "seconds": publish_seconds,
            "cpu_seconds": publish_cpu,
            **publish_stats,
        },
        "incremental_insertion": {
            "seconds": incremental_seconds,
            "cpu_seconds": incremental_cpu,
            **incremental_stats,
        },
        "deletion": {
            "seconds": deletion_seconds,
            "cpu_seconds": deletion_cpu,
            **deletion_stats,
        },
        "serving": {"seconds": serving_seconds},
        "serving_cold": {"seconds": cold_seconds},
    }


def _phase_efficiency(result: dict) -> dict[str, dict[str, float]]:
    """Per-phase rows/CPU accounting from the largest primary-policy cell.

    ``rows`` is the engine's ``tuples_inserted`` delta for the phase, so
    the derived rows-per-CPU-second measures useful derivation output per
    unit of compute (the greenness framing the harness documents).
    """
    cells = result.get("policies", {}).get(PRIMARY_POLICY, {}).get("cells", ())
    if not cells:
        return {}
    cell = max(cells, key=lambda c: c["peers"])
    phases: dict[str, dict[str, float]] = {}
    for phase in ("publish", "incremental_insertion", "deletion"):
        block = cell.get(phase)
        if not isinstance(block, dict):
            continue
        phases[phase] = {
            "rows": float(block.get("tuples_inserted", 0.0)),
            "wall_seconds": float(block.get("seconds", 0.0)),
            "cpu_seconds": float(block.get("cpu_seconds", 0.0)),
            "rows_per_cpu_second": rows_per_cpu_second(
                float(block.get("tuples_inserted", 0.0)),
                float(block.get("cpu_seconds", 0.0)),
            ),
        }
    return phases


def _median_cell(samples: list[dict[str, object]]) -> dict[str, object]:
    """Per-phase medians: for each phase, the sample with the median wall
    time contributes that phase's seconds *and* engine counters (so the
    counters stay from a real run), which de-noises phases independently."""
    cell = dict(samples[0])
    cell["samples"] = len(samples)
    for phase in PHASES:
        if phase not in cell:
            continue
        ordered = sorted(samples, key=lambda c: c[phase]["seconds"])
        median = dict(ordered[len(ordered) // 2][phase])
        median["seconds_all"] = sorted(c[phase]["seconds"] for c in samples)
        cell[phase] = median
    return cell


def _policy_speedup(
    policies: dict[str, dict[str, object]]
) -> dict[str, dict[str, float]]:
    """Eager/deferred wall-time ratios per phase and peer count (>1 means
    the deferred policy is faster)."""
    eager = policies.get("eager", {}).get("cells", ())
    deferred = policies.get("deferred", {}).get("cells", ())
    by_peers = {cell["peers"]: cell for cell in eager}
    out: dict[str, dict[str, float]] = {}
    for cell in deferred:
        base = by_peers.get(cell["peers"])
        if base is None:
            continue
        for phase in PHASES:
            seconds = cell.get(phase, {}).get("seconds", 0.0)
            if seconds <= 0 or phase not in base:
                continue
            out.setdefault(phase, {})[str(cell["peers"])] = (
                base[phase]["seconds"] / seconds
            )
    return out


def run_policy_series(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
    index_policies: tuple[str, ...] = INDEX_POLICIES,
    dataset: str = "integer",
    workers: int | None = None,
) -> dict[str, object]:
    """The exchange series under every requested index policy.

    Policy samples are interleaved (sample 1 of every policy, then sample
    2, ...) so slow machine-level drift hits all policies evenly instead
    of biasing whichever ran last; per-phase medians de-noise the rest.
    """
    policies: dict[str, dict[str, object]] = {}
    for peers in peer_counts:
        samples: dict[str, list[dict[str, object]]] = {
            policy: [] for policy in index_policies
        }
        for _ in range(max(1, repeat)):
            for policy in index_policies:
                samples[policy].append(
                    run_cell(
                        peers,
                        base_per_peer,
                        insert_per_peer,
                        seed,
                        index_policy=policy,
                        dataset=dataset,
                        workers=workers,
                    )
                )
        for policy in index_policies:
            cell = _median_cell(samples[policy])
            policies.setdefault(policy, {"cells": []})["cells"].append(cell)
            print(
                f"  [{dataset}/{policy}] peers={peers:3d}"
                f"  publish={cell['publish']['seconds']:.3f}s"
                f"  incremental={cell['incremental_insertion']['seconds']:.3f}s"
                f"  deletion={cell['deletion']['seconds']:.3f}s"
                f"  serving={cell['serving']['seconds']:.3f}s"
                f"  hit_rate="
                f"{cell['incremental_insertion'].get('plan_cache_hit_rate', 0.0):.2f}"
            )
    result: dict[str, object] = {
        "workload": {
            "dataset": dataset,
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "insert_per_peer": insert_per_peer,
            "delete_per_peer": insert_per_peer,
            "seed": seed,
            "repeat": repeat,
            "workers": workers if workers is not None else 1,
        },
        "policies": policies,
    }
    speedup = _policy_speedup(policies)
    if speedup:
        result["policy_speedup_deferred_vs_eager"] = speedup
        for phase, ratios in speedup.items():
            rendered = ", ".join(
                f"{peers} peers: {ratio:.2f}x"
                for peers, ratio in ratios.items()
            )
            print(f"  deferred-vs-eager[{phase}]: {rendered}")
    return result


def run_benchmark(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
    index_policies: tuple[str, ...] = INDEX_POLICIES,
    string_base_per_peer: int | None = None,
    workers: int | None = None,
    workers_counts: tuple[int, ...] | None = None,
    churn_per_peer: int | None = None,
    churn_batches: int = 3,
    replication_workers_counts: tuple[int, ...] | None = None,
) -> dict[str, object]:
    series = run_policy_series(
        peer_counts,
        base_per_peer,
        insert_per_peer,
        seed=seed,
        repeat=repeat,
        index_policies=index_policies,
        workers=workers,
    )
    result: dict[str, object] = {"format": RESULT_FORMAT, **series}
    if workers_counts:
        print(f"workers series: workers={workers_counts}")
        result["workers_series"] = run_workers_series(
            peer_counts,
            base_per_peer,
            insert_per_peer,
            seed=seed,
            repeat=repeat,
            workers_counts=workers_counts,
        )
    if replication_workers_counts:
        print(
            "replication series: full vs complement at "
            f"workers={replication_workers_counts}"
        )
        result["replication_series"] = run_replication_series(
            peer_counts,
            base_per_peer,
            insert_per_peer,
            seed=seed,
            repeat=repeat,
            workers_counts=replication_workers_counts,
        )
    # The legacy top-level cells: the shipped-default policy's series (what
    # --baseline comparisons across PRs read).
    primary = (
        PRIMARY_POLICY
        if PRIMARY_POLICY in series["policies"]
        else next(iter(series["policies"]))
    )
    result["cells"] = series["policies"][primary]["cells"]
    if churn_per_peer:
        print(
            f"mixed-churn series: churn={churn_per_peer}/peer "
            f"batches={churn_batches}"
        )
        result["mixed_churn"] = run_mixed_churn_series(
            peer_counts,
            base_per_peer,
            churn_per_peer,
            churn_batches,
            seed=seed,
            repeat=repeat,
            workers=workers,
        )
    if string_base_per_peer:
        print(
            f"string-dataset series: base={string_base_per_peer}/peer "
            f"insert={insert_per_peer}/peer"
        )
        result["string_series"] = run_policy_series(
            peer_counts,
            string_base_per_peer,
            insert_per_peer,
            seed=seed,
            repeat=1,
            index_policies=index_policies,
            dataset="string",
            workers=workers,
        )
    return result


# ---------------------------------------------------------------------------
# Shard-parallel workers series (workers ∈ {1, 2, 4})
# ---------------------------------------------------------------------------


def run_workers_series(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
    workers_counts: tuple[int, ...] = (1, 2, 4),
    index_policy: str = PRIMARY_POLICY,
) -> dict[str, object]:
    """The exchange phases under a range of evaluation worker counts.

    Same cell shape as the policy series (publish / incremental /
    deletion under the serving mix), all under the shipped-default index
    policy, one sub-series per worker count; samples are interleaved
    across worker counts like the policy series.  ``cpu_count`` is
    recorded because it is the whole story for this series: N workers
    cannot beat 1 on wall time without N cores to run on — on a 1-CPU
    host the series measures the protocol's overhead (Δ-shard shipping +
    merge), on an N-core host its speedup.
    """
    import os

    counts: dict[str, dict[str, object]] = {}
    for peers in peer_counts:
        samples: dict[int, list[dict[str, object]]] = {
            workers: [] for workers in workers_counts
        }
        for _ in range(max(1, repeat)):
            for workers in workers_counts:
                samples[workers].append(
                    run_cell(
                        peers,
                        base_per_peer,
                        insert_per_peer,
                        seed,
                        index_policy=index_policy,
                        workers=workers,
                    )
                )
        for workers in workers_counts:
            cell = _median_cell(samples[workers])
            counts.setdefault(str(workers), {"cells": []})["cells"].append(
                cell
            )
            print(
                f"  [workers={workers}] peers={peers:3d}"
                f"  publish={cell['publish']['seconds']:.3f}s"
                f"  incremental={cell['incremental_insertion']['seconds']:.3f}s"
                f"  deletion={cell['deletion']['seconds']:.3f}s"
                f"  parallel_rounds="
                f"{cell['publish'].get('parallel_rounds', 0):.0f}"
            )
    result: dict[str, object] = {
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "insert_per_peer": insert_per_peer,
            "delete_per_peer": insert_per_peer,
            "seed": seed,
            "repeat": repeat,
            "index_policy": index_policy,
            "workers_counts": list(workers_counts),
            "cpu_count": os.cpu_count(),
        },
        "workers": counts,
    }
    speedup = _workers_speedup(counts)
    if speedup:
        result["speedup_vs_workers1"] = speedup
        for phase, by_workers in speedup.items():
            rendered = ", ".join(
                f"{workers}w: "
                + ", ".join(
                    f"{peers} peers {ratio:.2f}x"
                    for peers, ratio in ratios.items()
                )
                for workers, ratios in by_workers.items()
            )
            print(f"  workers-vs-sequential[{phase}]: {rendered}")
    return result


def _workers_speedup(
    counts: dict[str, dict[str, object]]
) -> dict[str, dict[str, dict[str, float]]]:
    """workers=1 / workers=N wall ratios per phase, worker count and peer
    count (>1 means the parallel configuration is faster)."""
    baseline = {
        cell["peers"]: cell
        for cell in counts.get("1", {}).get("cells", ())
    }
    out: dict[str, dict[str, dict[str, float]]] = {}
    for workers, series in counts.items():
        if workers == "1":
            continue
        for cell in series["cells"]:
            base = baseline.get(cell["peers"])
            if base is None:
                continue
            for phase in PHASES:
                seconds = cell.get(phase, {}).get("seconds", 0.0)
                if seconds <= 0 or phase not in base:
                    continue
                out.setdefault(phase, {}).setdefault(workers, {})[
                    str(cell["peers"])
                ] = base[phase]["seconds"] / seconds
    return out


# ---------------------------------------------------------------------------
# Replication shipping series (protocol v1 full vs v2 complement)
# ---------------------------------------------------------------------------

REPLICATION_MODES = ("full", "complement")


def run_replication_cell(
    peers: int,
    base_per_peer: int,
    insert_per_peer: int,
    seed: int,
    workers: int,
    mode: str,
) -> dict[str, object]:
    """One replication cell: the three exchange phases under ``mode``.

    ``mode`` pins ``REPRO_REPLICATION`` for the pool's protocol
    negotiation — ``full`` forces v1 broadcast shipping, ``complement``
    allows v2 retained-derivation shipping — and the cell reads the
    transport's per-message byte counters plus the pool's replication
    row accounting afterwards.  ``bytes_on_wire`` is the MSG_APPLY
    payload volume (the replication traffic the protocol targets);
    ``bytes_total`` includes task shipping and results for context.  On
    a 1-CPU CI host wall time barely moves either way — bytes, rows
    retained and rows/CPU-second are the honest metrics here.
    """
    import os

    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    previous = os.environ.get("REPRO_REPLICATION")
    os.environ["REPRO_REPLICATION"] = mode
    try:
        cdss = _build_cdss(generator, PRIMARY_POLICY, workers)
        generator.record_insertions(cdss, generator.insertions(base_per_peer))
        publish_seconds, publish_cpu = _timed_cpu(cdss.update_exchange)
        generator.record_insertions(
            cdss, generator.insertions(insert_per_peer)
        )
        incremental_seconds, incremental_cpu = _timed_cpu(
            cdss.update_exchange
        )
        generator.record_deletions(cdss, generator.deletions(insert_per_peer))
        deletion_seconds, deletion_cpu = _timed_cpu(cdss.update_exchange)
        total_tuples = cdss.system().total_tuples()
        stats = cdss.system().parallel_stats() or {}
        cdss.system().close()
    finally:
        if previous is None:
            os.environ.pop("REPRO_REPLICATION", None)
        else:
            os.environ["REPRO_REPLICATION"] = previous

    transport = stats.get("transport", {}) or {}
    apply_traffic = transport.get("apply", {})
    replication = dict(stats.get("replication", {}))
    cpu_seconds = publish_cpu + incremental_cpu + deletion_cpu
    return {
        "peers": peers,
        "workers": workers,
        "mode": mode,
        "protocol": stats.get("protocol"),
        "seconds": publish_seconds + incremental_seconds + deletion_seconds,
        "cpu_seconds": cpu_seconds,
        "total_tuples": total_tuples,
        "rows_per_cpu_second": rows_per_cpu_second(
            total_tuples, cpu_seconds
        ),
        "bytes_on_wire": apply_traffic.get("bytes_out", 0),
        "frames_on_wire": apply_traffic.get("frames_out", 0),
        "bytes_total": transport.get("total", {}).get("bytes_out", 0),
        "replication": replication,
        "peak_rss_kb": efficiency_snapshot()["peak_rss_kb"],
    }


def run_replication_series(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
    workers_counts: tuple[int, ...] = (2, 4),
) -> dict[str, object]:
    """Full vs complement shipping, per peer and worker count.

    Each cell pairs the two modes on an identical workload and reports
    ``wire_bytes_reduction`` — the fraction of MSG_APPLY bytes the
    complement protocol avoids shipping (the headline number for this
    series; the driver fails the run if it ever goes negative).  Byte
    counters are deterministic per workload, so medians only de-noise
    the timing fields.
    """
    import os

    cells: list[dict[str, object]] = []
    for peers in peer_counts:
        for workers in workers_counts:
            samples: dict[str, list[dict[str, object]]] = {
                mode: [] for mode in REPLICATION_MODES
            }
            for _ in range(max(1, repeat)):
                for mode in REPLICATION_MODES:
                    samples[mode].append(
                        run_replication_cell(
                            peers,
                            base_per_peer,
                            insert_per_peer,
                            seed,
                            workers,
                            mode,
                        )
                    )
            pair: dict[str, dict[str, object]] = {}
            for mode in REPLICATION_MODES:
                ordered = sorted(
                    samples[mode], key=lambda cell: cell["seconds"]
                )
                median = dict(ordered[len(ordered) // 2])
                median["samples"] = len(ordered)
                pair[mode] = median
            full_bytes = pair["full"]["bytes_on_wire"]
            complement_bytes = pair["complement"]["bytes_on_wire"]
            reduction = (
                1.0 - complement_bytes / full_bytes if full_bytes else 0.0
            )
            retained = pair["complement"]["replication"].get(
                "rows_retained", 0
            )
            shipped = pair["complement"]["replication"].get(
                "rows_shipped", 0
            )
            cells.append(
                {
                    "peers": peers,
                    "workers": workers,
                    "full": pair["full"],
                    "complement": pair["complement"],
                    "wire_bytes_reduction": reduction,
                }
            )
            print(
                f"  [replication] peers={peers:3d} workers={workers}"
                f"  full={full_bytes}B complement={complement_bytes}B"
                f"  reduction={reduction:.1%}"
                f"  shipped={shipped} retained={retained}"
            )
    return {
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "insert_per_peer": insert_per_peer,
            "delete_per_peer": insert_per_peer,
            "seed": seed,
            "repeat": repeat,
            "index_policy": PRIMARY_POLICY,
            "workers_counts": list(workers_counts),
            "modes": list(REPLICATION_MODES),
            "cpu_count": os.cpu_count(),
        },
        "cells": cells,
    }


def replication_regressions(series: dict[str, object]) -> list[str]:
    """Cells where complement shipping moved MORE bytes than full —
    the invariant the CI bench job enforces."""
    problems: list[str] = []
    for cell in series.get("cells", ()):
        full_bytes = cell["full"]["bytes_on_wire"]
        complement_bytes = cell["complement"]["bytes_on_wire"]
        if complement_bytes > full_bytes:
            problems.append(
                f"peers={cell['peers']} workers={cell['workers']}: "
                f"complement shipped {complement_bytes}B > full "
                f"{full_bytes}B"
            )
    return problems


# ---------------------------------------------------------------------------
# Mixed-churn series (interleaved insert / delete / trust-revocation batches)
# ---------------------------------------------------------------------------


def _revocation_picks(
    cdss, generator, local_rows: dict[str, set], per_peer: int
) -> list[tuple[str, tuple]]:
    """Up to ``per_peer`` derived output rows per peer, for revocation.

    A batch ``delete`` of a row the peer never published locally is
    classified by ``publish`` as a *rejection insertion* — the paper's
    trust-revocation edit.  Derived rows are exactly the output rows not
    in the peer's tracked local contributions; the repr sort keeps the
    batch composition deterministic across processes (SkolemValue /
    labeled-null hashes are not)."""
    picks: list[tuple[str, tuple]] = []
    for layout in generator.layouts:
        needed = per_peer
        for part in range(len(layout.partitions)):
            if needed <= 0:
                break
            name = layout.relation_name(part)
            owned = local_rows.get(name, set())
            derived = sorted(
                (
                    row
                    for row in cdss.relation(name).to_rows()
                    if row not in owned
                ),
                key=repr,
            )
            take = derived[:needed]
            picks.extend((name, row) for row in take)
            needed -= len(take)
    return picks


def run_mixed_churn_cell(
    peers: int,
    base_per_peer: int,
    churn_per_peer: int,
    batches: int,
    seed: int,
    index_policy: str = PRIMARY_POLICY,
    workers: int | None = None,
) -> tuple[dict[str, object], dict[str, list[dict[str, object]]]]:
    """One mixed-churn cell: base publish, then ``batches`` rounds of
    interleaved insertion / deletion / revocation / combined batches,
    each followed by one timed ``update_exchange``.

    Returns ``(metadata, samples)`` where ``samples`` maps each of
    ``MIXED_PHASES`` to one timing dict per batch round.
    """
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    workers = 1 if workers is None else workers
    cdss = _build_cdss(generator, index_policy, workers)

    # Locally published rows per relation, mirrored from the staged
    # updates: the complement (within an output view) is derived rows,
    # the revocation targets.
    local_rows: dict[str, set] = {}

    def _track(updates, inserted: bool) -> None:
        for update in updates:
            for relation, row in update.rows.items():
                rows = local_rows.setdefault(relation, set())
                (rows.add if inserted else rows.discard)(row)

    base_updates = generator.insertions(base_per_peer)
    generator.record_insertions(cdss, base_updates)
    _track(base_updates, True)
    base_seconds = _timed(cdss.update_exchange)

    samples: dict[str, list[dict[str, object]]] = {
        phase: [] for phase in MIXED_PHASES
    }

    def _run_phase(phase: str, stage) -> None:
        batch_rows = stage()
        before = _engine_stats(cdss)
        seconds, cpu_seconds = _timed_cpu(cdss.update_exchange)
        stats = _stats_delta(_engine_stats(cdss), before)
        samples[phase].append(
            {
                "seconds": seconds,
                "cpu_seconds": cpu_seconds,
                "batch_rows": batch_rows,
                **stats,
            }
        )

    def _stage_insert() -> int:
        updates = generator.insertions(churn_per_peer)
        staged = generator.record_insertions(cdss, updates)
        _track(updates, True)
        return staged

    def _stage_delete() -> int:
        updates = generator.deletions(churn_per_peer)
        staged = generator.record_deletions(cdss, updates)
        _track(updates, False)
        return staged

    def _stage_revoke() -> int:
        picks = _revocation_picks(cdss, generator, local_rows, churn_per_peer)
        with cdss.batch() as tx:
            for relation, row in picks:
                tx.delete(relation, row)
        return len(picks)

    def _stage_combined() -> int:
        inserted = generator.insertions(churn_per_peer)
        deleted = generator.deletions(churn_per_peer)
        revoked = _revocation_picks(
            cdss, generator, local_rows, churn_per_peer
        )
        with cdss.batch() as tx:
            for update in inserted:
                for relation, row in update.rows.items():
                    tx.insert(relation, row)
            for update in deleted:
                for relation, row in update.rows.items():
                    tx.delete(relation, row)
            for relation, row in revoked:
                tx.delete(relation, row)
            staged = len(tx)
        _track(inserted, True)
        _track(deleted, False)
        return staged

    for _ in range(max(1, batches)):
        _run_phase("insertion", _stage_insert)
        _run_phase("deletion", _stage_delete)
        _run_phase("revocation", _stage_revoke)
        _run_phase("combined", _stage_combined)

    metadata: dict[str, object] = {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "churn_per_peer": churn_per_peer,
        "batches": max(1, batches),
        "index_policy": index_policy,
        "workers": workers,
        "base_publish": {"seconds": base_seconds},
        "total_tuples": cdss.system().total_tuples(),
    }
    return metadata, samples


def _median_phase(samples: list[dict[str, object]]) -> dict[str, object]:
    """The median-wall-time sample (real counters), plus ``seconds_all``."""
    ordered = sorted(samples, key=lambda sample: sample["seconds"])
    median = dict(ordered[len(ordered) // 2])
    median["seconds_all"] = sorted(s["seconds"] for s in samples)
    return median


def run_mixed_churn_series(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    churn_per_peer: int,
    batches: int,
    seed: int = 0,
    repeat: int = 1,
    index_policy: str = PRIMARY_POLICY,
    workers: int | None = None,
) -> dict[str, object]:
    """The mixed-churn series: per peer count, ``repeat`` fresh cells of
    ``batches`` interleaved batch rounds, pooled into per-phase medians."""
    cells: list[dict[str, object]] = []
    for peers in peer_counts:
        pooled: dict[str, list[dict[str, object]]] = {
            phase: [] for phase in MIXED_PHASES
        }
        metadata: dict[str, object] = {}
        for _ in range(max(1, repeat)):
            metadata, samples = run_mixed_churn_cell(
                peers,
                base_per_peer,
                churn_per_peer,
                batches,
                seed,
                index_policy=index_policy,
                workers=workers,
            )
            for phase in MIXED_PHASES:
                pooled[phase].extend(samples[phase])
        cell = dict(metadata)
        cell["samples"] = max(1, repeat) * max(1, batches)
        for phase in MIXED_PHASES:
            cell[phase] = _median_phase(pooled[phase])
        cells.append(cell)
        print(
            f"  [mixed-churn] peers={peers:3d}"
            f"  insertion={cell['insertion']['seconds']:.3f}s"
            f"  deletion={cell['deletion']['seconds']:.3f}s"
            f"  revocation={cell['revocation']['seconds']:.3f}s"
            f"  combined={cell['combined']['seconds']:.3f}s"
        )
    return {
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "churn_per_peer": churn_per_peer,
            "batches": max(1, batches),
            "seed": seed,
            "repeat": repeat,
            "index_policy": index_policy,
            "workers": workers if workers is not None else 1,
        },
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# Query-serving series (BENCH_query.json)
# ---------------------------------------------------------------------------


def run_query_cell(
    peers: int, base_per_peer: int, repeats: int, seed: int
) -> dict[str, object]:
    """One query-benchmark cell over a populated workload CDSS.

    Repeats the same key lookup with a fresh binding each time, through
    four routes: prepared+parameterized, ad-hoc text, pushdown ``where``,
    and the callable-``where`` slow path.
    """
    from repro.api.query import Query, col, param

    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()
    generator.populate(cdss, base_per_peer)

    relation = generator.layouts[0].relation_name(0)
    view = cdss.relation(relation)
    schema = view.schema
    key_attr = schema.attributes[0]
    keys = sorted(row[0] for row in view.to_rows())
    chosen = [keys[i % len(keys)] for i in range(repeats)]

    # Prepared + parameterized: plan/compile once, re-bind per execute.
    prepared = cdss.prepare(
        Query.scan(view).select(col(key_attr) == param("k"))
    )
    matched = 0
    before = _engine_stats(cdss)
    start = time.perf_counter()
    for key in chosen:
        matched += len(prepared.execute(k=key).to_rows())
    prepared_seconds = time.perf_counter() - start
    prepared_stats = _stats_delta(_engine_stats(cdss), before)

    # Prepared + result cache: one binding re-executed ``repeats`` times.
    # After the first execute the version-keyed result cache serves the
    # materialized rows O(1) (hits recorded on the prepared query).
    hot_key = chosen[0]
    cached_hits_before = getattr(prepared, "result_cache_hits", 0)
    start = time.perf_counter()
    cached_matched = sum(
        len(prepared.execute(k=hot_key).to_rows()) for _ in range(repeats)
    )
    cached_seconds = time.perf_counter() - start
    cached_hits = getattr(prepared, "result_cache_hits", 0) - cached_hits_before

    # Ad hoc: the same lookups as one-shot text queries (plan every time).
    head_vars = ", ".join(f"v{i}" for i in range(1, schema.arity))
    adhoc_matched = 0
    start = time.perf_counter()
    for key in chosen:
        text = f"ans({head_vars}) :- {relation}({key}, {head_vars})"
        adhoc_matched += len(cdss.query(text))
    adhoc_seconds = time.perf_counter() - start

    # Pushdown where: structured predicate -> indexed probe.
    pushdown_matched = 0
    start = time.perf_counter()
    for key in chosen:
        pushdown_matched += len(view.where(col(key_attr) == key).to_rows())
    pushdown_seconds = time.perf_counter() - start

    # Callable where: the deprecated full-scan slow path.
    callable_matched = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        start = time.perf_counter()
        for key in chosen:
            callable_matched += len(
                view.where(lambda row, _k=key: row[0] == _k).to_rows()
            )
        callable_seconds = time.perf_counter() - start

    if not (matched == adhoc_matched == pushdown_matched == callable_matched):
        raise AssertionError(
            "query routes disagree: "
            f"{matched}/{adhoc_matched}/{pushdown_matched}/{callable_matched}"
        )
    return {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "repeats": repeats,
        "relation": relation,
        "distinct_keys": len(keys),
        "rows_matched": matched,
        "prepared": {"seconds": prepared_seconds, **prepared_stats},
        "prepared_cached": {
            "seconds": cached_seconds,
            "result_cache_hits": cached_hits,
            "rows_per_execute": cached_matched // max(1, repeats),
        },
        "adhoc": {"seconds": adhoc_seconds},
        "where_pushdown": {"seconds": pushdown_seconds},
        "where_callable": {"seconds": callable_seconds},
        "speedups": {
            "prepared_vs_adhoc": (
                adhoc_seconds / prepared_seconds if prepared_seconds > 0 else 0.0
            ),
            "cached_vs_prepared": (
                (prepared_seconds / repeats) / (cached_seconds / repeats)
                if cached_seconds > 0
                else 0.0
            ),
            "pushdown_vs_callable": (
                callable_seconds / pushdown_seconds
                if pushdown_seconds > 0
                else 0.0
            ),
        },
    }


def run_query_benchmark(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    repeats: int,
    seed: int = 0,
) -> dict[str, object]:
    cells = []
    for peers in peer_counts:
        cell = run_query_cell(peers, base_per_peer, repeats, seed)
        cells.append(cell)
        print(
            f"  peers={peers:3d}  prepared={cell['prepared']['seconds']:.3f}s"
            f"  adhoc={cell['adhoc']['seconds']:.3f}s"
            f"  pushdown={cell['where_pushdown']['seconds']:.3f}s"
            f"  callable={cell['where_callable']['seconds']:.3f}s"
            f"  hit_rate="
            f"{cell['prepared'].get('plan_cache_hit_rate', 0.0):.2f}"
        )
    return {
        "format": QUERY_RESULT_FORMAT,
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "repeats": repeats,
            "seed": seed,
        },
        "cells": cells,
    }


def _speedups(
    baseline: dict[str, object],
    current: dict[str, object],
    phases: tuple[str, ...] = PHASES,
) -> dict[str, dict[str, float]]:
    """Per-peer-count baseline/current wall-time ratios, keyed by phase."""
    by_peers = {
        cell["peers"]: cell for cell in baseline.get("cells", ())
    }
    out: dict[str, dict[str, float]] = {}
    for cell in current["cells"]:
        base = by_peers.get(cell["peers"])
        if base is None:
            continue
        for phase in phases:
            if phase not in cell or phase not in base:
                continue  # older baselines predate the deletion series
            current_seconds = cell[phase]["seconds"]
            if current_seconds <= 0:
                continue
            out.setdefault(phase, {})[str(cell["peers"])] = (
                base[phase]["seconds"] / current_seconds
            )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs",
    )
    parser.add_argument("--peers", type=int, nargs="*", default=None)
    parser.add_argument("--base", type=int, default=None)
    parser.add_argument("--insert", type=int, default=None)
    parser.add_argument(
        "--repeat",
        type=int,
        default=None,
        help=(
            "samples per cell, interleaved across policies; per-phase "
            "medians reported (default: 5, or 1 with --quick)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed a previously saved result file and report speedups",
    )
    parser.add_argument(
        "--only",
        choices=("all", "exchange", "query", "replication"),
        default="all",
        help=(
            "which series to run (default: exchange + query; "
            "'replication' runs just the shipping-mode series and "
            "merges it into an existing --out file when one is present)"
        ),
    )
    parser.add_argument(
        "--index-policy",
        choices=("eager", "deferred", "both"),
        default="both",
        help="index maintenance policies for the exchange series "
        "(default: both, so policy regressions are visible per run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluation worker count for the exchange/string series "
        "(default: sequential)",
    )
    parser.add_argument(
        "--workers-counts",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="worker counts for the shard-parallel series "
        "(default: 1 2 4, or 1 2 with --quick; pass no values to skip)",
    )
    parser.add_argument(
        "--replication-workers",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="worker counts for the replication shipping series "
        "(default: 2 4, or 2 with --quick; pass no values to skip)",
    )
    parser.add_argument(
        "--churn",
        type=int,
        default=None,
        help="entries/peer per mixed-churn batch (default: --insert; "
        "0 disables the mixed-churn series)",
    )
    parser.add_argument(
        "--churn-batches",
        type=int,
        default=None,
        help="interleaved batch rounds per mixed-churn cell "
        "(default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--string-base",
        type=int,
        default=None,
        help="base entries/peer for the string-dataset series "
        "(default: a third of --base; 0 disables the series)",
    )
    parser.add_argument(
        "--query-repeats",
        type=int,
        default=None,
        help="parameter bindings per query cell (default: 200, or 20 with --quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "exchange-series result path (default: BENCH_update_exchange.json "
            "at the repo root; --quick writes BENCH_update_exchange_quick.json "
            "so smoke runs never clobber the committed perf trajectory; the "
            "query series always writes BENCH_query[_quick].json alongside)"
        ),
    )
    args = parser.parse_args(argv)
    suffix = "_quick" if args.quick else ""
    if args.out is None:
        args.out = REPO_ROOT / f"BENCH_update_exchange{suffix}.json"
    query_out = REPO_ROOT / f"BENCH_query{suffix}.json"

    if args.quick:
        peer_counts = tuple(args.peers or (2, 3))
        base = args.base if args.base is not None else 20
        insert = args.insert if args.insert is not None else 2
        repeat = args.repeat if args.repeat is not None else 1
        query_repeats = (
            args.query_repeats if args.query_repeats is not None else 20
        )
    else:
        peer_counts = tuple(args.peers or (2, 5, 10))
        base = args.base if args.base is not None else 400
        insert = args.insert if args.insert is not None else 40
        repeat = args.repeat if args.repeat is not None else 5
        query_repeats = (
            args.query_repeats if args.query_repeats is not None else 200
        )

    index_policies = (
        INDEX_POLICIES
        if args.index_policy == "both"
        else (args.index_policy,)
    )
    string_base = (
        args.string_base
        if args.string_base is not None
        else max(1, base // 3)
    )
    if args.workers_counts is None:
        workers_counts = (1, 2) if args.quick else (1, 2, 4)
    else:
        workers_counts = tuple(args.workers_counts)
    if args.replication_workers is None:
        replication_workers = (2,) if args.quick else (2, 4)
    else:
        replication_workers = tuple(args.replication_workers)
    churn = args.churn if args.churn is not None else insert
    churn_batches = (
        args.churn_batches
        if args.churn_batches is not None
        else (2 if args.quick else 3)
    )

    if args.only in ("all", "exchange"):
        print(
            f"update-exchange scale benchmark: peers={peer_counts} "
            f"base={base}/peer insert={insert}/peer repeat={repeat} "
            f"policies={index_policies}"
        )
        result = run_benchmark(
            peer_counts,
            base,
            insert,
            seed=args.seed,
            repeat=repeat,
            index_policies=index_policies,
            string_base_per_peer=string_base,
            workers=args.workers,
            workers_counts=workers_counts,
            churn_per_peer=churn,
            churn_batches=churn_batches,
            replication_workers_counts=replication_workers,
        )

        if args.baseline is not None and args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            result["baseline"] = baseline
            result["speedup_vs_baseline"] = _speedups(baseline, result)
            # speedup_vs_pr6: the same ratios under the name the perf
            # trajectory tracks across the weighted-core refactor, plus
            # the mixed-churn phases when the baseline recorded them.
            pr6 = dict(result["speedup_vs_baseline"])
            mixed_baseline = baseline.get("mixed_churn")
            if mixed_baseline and "mixed_churn" in result:
                mixed_speedup = _speedups(
                    mixed_baseline,
                    result["mixed_churn"],
                    phases=MIXED_PHASES,
                )
                result["mixed_churn"]["speedup_vs_pr6"] = mixed_speedup
                pr6["mixed_churn"] = mixed_speedup
                for phase, ratios in mixed_speedup.items():
                    rendered = ", ".join(
                        f"{peers} peers: {ratio:.2f}x"
                        for peers, ratio in ratios.items()
                    )
                    print(f"  speedup_vs_pr6[mixed/{phase}]: {rendered}")
            result["speedup_vs_pr6"] = pr6
            for phase, ratios in result["speedup_vs_baseline"].items():
                rendered = ", ".join(
                    f"{peers} peers: {ratio:.2f}x"
                    for peers, ratio in ratios.items()
                )
                print(f"  speedup[{phase}]: {rendered}")

        phases = _phase_efficiency(result)
        if phases:
            result["phase_efficiency"] = phases
        result["efficiency"] = efficiency_snapshot()
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")
        if phases:
            cell_peers = max(
                c["peers"]
                for c in result["policies"][PRIMARY_POLICY]["cells"]
            )
            print(
                phase_efficiency_table(
                    phases,
                    title=f"phase efficiency ({cell_peers} peers, "
                    f"{PRIMARY_POLICY} policy)",
                )
            )
        print(efficiency_footer())
        problems = replication_regressions(
            result.get("replication_series", {})
        )
        if problems:
            for problem in problems:
                print(f"REPLICATION REGRESSION: {problem}")
            return 1

    if args.only == "replication":
        if replication_workers:
            print(
                "replication series: full vs complement at "
                f"workers={replication_workers}"
            )
            series = run_replication_series(
                peer_counts,
                base,
                insert,
                seed=args.seed,
                repeat=repeat,
                workers_counts=replication_workers,
            )
            # Merge into an existing exchange result when one is present,
            # so the committed trajectory file can be refreshed without a
            # full rerun of the other series.
            result = (
                json.loads(args.out.read_text()) if args.out.exists() else {}
            )
            # @5 is @4 plus the replication series, so a merged file
            # carries the new format tag.
            result["format"] = RESULT_FORMAT
            result["replication_series"] = series
            result["efficiency"] = efficiency_snapshot()
            args.out.write_text(json.dumps(result, indent=2) + "\n")
            print(f"wrote {args.out}")
            problems = replication_regressions(series)
            if problems:
                for problem in problems:
                    print(f"REPLICATION REGRESSION: {problem}")
                return 1

    if args.only in ("all", "query"):
        print(
            f"repeated-parameterized-query benchmark: peers={peer_counts} "
            f"base={base}/peer repeats={query_repeats}"
        )
        query_result = run_query_benchmark(
            peer_counts, base, query_repeats, seed=args.seed
        )
        query_result["efficiency"] = efficiency_snapshot()
        query_out.write_text(json.dumps(query_result, indent=2) + "\n")
        print(f"wrote {query_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
