"""Figure 7 — Incremental insertion scalability, string dataset.

Paper setting: starting from instances computed from 10,000 base
insertions, time incremental propagation of 1% / 10% fresh insertions per
peer, for 2-10 peers, DB2 vs. Tukwila.

Paper shape: time grows roughly linearly with peers; 10% updates cost more
than 1%; "the Tukwila implementation is better optimized for the common
case, where the volume of updates is significantly smaller than the base
size" — the prepared-plan engine wins the 1% case.
"""

from conftest import scaled

from repro.bench import ENGINE_DB2, ENGINE_TUKWILA, fig7_insertions_string
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(80)
PEER_COUNTS = (2, 5, 10)


def _cell(peers: int, engine: str, fraction: float):
    from repro.bench.experiments import _populated

    def setup():
        generator, cdss = _populated(peers, BASE, "string", engine)
        count = max(1, int(BASE * fraction))
        generator.record_insertions(
            cdss, generator.insertions(per_peer=count)
        )
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_insert_1pct_5peers_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, ENGINE_DB2, 0.01), rounds=3)


def bench_insert_1pct_5peers_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, ENGINE_TUKWILA, 0.01), rounds=3)


def bench_insert_10pct_5peers_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, ENGINE_DB2, 0.10), rounds=3)


def bench_insert_10pct_5peers_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, ENGINE_TUKWILA, 0.10), rounds=3)


def bench_fig7_full_series(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_insertions_string(
            peer_counts=PEER_COUNTS, base_per_peer=BASE
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    for engine in (ENGINE_DB2, ENGINE_TUKWILA):
        for fraction in (0.01, 0.10):
            series = [
                s
                for _, s in result.series(
                    "peers", "seconds", engine=engine, fraction=fraction
                )
            ]
            assert monotone_nondecreasing(series, slack=0.35), (
                f"insertion time should grow with peers "
                f"({engine}, {fraction:.0%}): {series}"
            )
        # 10% updates cost more than 1% at the largest size.
        assert result.value(
            "seconds", peers=PEER_COUNTS[-1], engine=engine, fraction=0.10
        ) > result.value(
            "seconds", peers=PEER_COUNTS[-1], engine=engine, fraction=0.01
        )
    # The prepared-plan engine wins the small-update common case.
    assert result.value(
        "seconds", peers=PEER_COUNTS[-1], engine=ENGINE_TUKWILA, fraction=0.01
    ) <= result.value(
        "seconds", peers=PEER_COUNTS[-1], engine=ENGINE_DB2, fraction=0.01
    ) * 1.2
