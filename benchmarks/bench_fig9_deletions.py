"""Figure 9 — Incremental deletion scalability.

Paper setting: incremental deletions of 1% / 10% per peer on the DB2 engine
(the paper's Tukwila backend had no deletion implementation), for 2-20
peers, integer and string datasets.

Paper shape: deletion time grows with peers; for the large string tuples,
deletions are *cheaper* than the corresponding insertions ("our algorithm
does the majority of its computation while only using the keys of tuples"),
while for small integer tuples the situation reverses (more queries are
executed in deletion).
"""

from conftest import scaled

from repro.bench import fig9_deletions, fig7_insertions_string
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(80)
PEER_COUNTS = (2, 5, 10)


def _cell(peers: int, dataset: str, fraction: float):
    from repro.bench.experiments import ENGINE_DB2, _populated

    def setup():
        generator, cdss = _populated(peers, BASE, dataset, ENGINE_DB2)
        count = max(1, int(BASE * fraction))
        generator.record_deletions(
            cdss, generator.deletions(per_peer=count)
        )
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_delete_1pct_5peers_integer(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, "integer", 0.01), rounds=3)


def bench_delete_10pct_5peers_integer(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, "integer", 0.10), rounds=3)


def bench_delete_1pct_5peers_string(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, "string", 0.01), rounds=3)


def bench_delete_10pct_5peers_string(benchmark):
    benchmark.pedantic(_run, setup=_cell(5, "string", 0.10), rounds=3)


def bench_fig9_full_series(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_deletions(peer_counts=PEER_COUNTS, base_per_peer=BASE),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    for dataset in ("integer", "string"):
        for fraction in (0.01, 0.10):
            series = [
                s
                for _, s in result.series(
                    "peers", "seconds", dataset=dataset, fraction=fraction
                )
            ]
            assert monotone_nondecreasing(series, slack=0.35), (
                f"deletion time should grow with peers "
                f"({dataset}, {fraction:.0%}): {series}"
            )
        # 10% deletions cost more than 1% overall (aggregated across peer
        # counts to damp single-cell timing noise).
        total_10 = sum(
            s
            for _, s in result.series(
                "peers", "seconds", dataset=dataset, fraction=0.10
            )
        )
        total_1 = sum(
            s
            for _, s in result.series(
                "peers", "seconds", dataset=dataset, fraction=0.01
            )
        )
        assert total_10 > total_1 * 0.9, (
            f"10% deletions should cost more than 1% ({dataset}): "
            f"{total_10} vs {total_1}"
        )
