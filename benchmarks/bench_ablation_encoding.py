"""Ablation — composite mapping tables vs. per-rule provenance tables.

Section 5 ("Provenance storage"): the ORCHESTRA authors found that reducing
the number of provenance relations mattered, and that "a single provenance
table per mapping tgd" (the composite mapping table) "performed better" than
the direct per-rule encoding.  This ablation measures both encodings on the
same workload and reports the table counts.
"""

from conftest import scaled

from repro.bench import ablation_encoding
from repro.provenance import ENCODING_COMPOSITE, ENCODING_PER_RULE

BASE = scaled(60)


def _cell(style: str):
    from repro.workload import CDSSWorkloadGenerator, WorkloadConfig

    def setup():
        generator = CDSSWorkloadGenerator(
            WorkloadConfig(peers=4, dataset="integer", seed=0)
        )
        cdss = generator.build_cdss(encoding_style=style)
        generator.record_insertions(cdss, generator.insertions(BASE))
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_composite_encoding(benchmark):
    benchmark.pedantic(_run, setup=_cell(ENCODING_COMPOSITE), rounds=3)


def bench_per_rule_encoding(benchmark):
    benchmark.pedantic(_run, setup=_cell(ENCODING_PER_RULE), rounds=3)


def bench_ablation_encoding_report(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_encoding(base_per_peer=BASE), rounds=1, iterations=1
    )
    result.print_table()
    composite_tables = result.value("prov_tables", style=ENCODING_COMPOSITE)
    per_rule_tables = result.value("prov_tables", style=ENCODING_PER_RULE)
    # Composite never uses more provenance tables than per-rule.
    assert composite_tables <= per_rule_tables
