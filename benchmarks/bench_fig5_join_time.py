"""Figure 5 — Time to join the system.

Paper setting: a peer joining triggers the initial full computation of all
instances and provenance from 10,000 base insertions, for 2-20 peers, DB2
vs. Tukwila and integer vs. string datasets.

Paper shape: join time grows superlinearly with peers; string data costs
more than integer; the DB2 (cost-based) engine is faster for this bulk-load
case.
"""

from conftest import scaled

from repro.bench import ENGINE_DB2, ENGINE_TUKWILA, fig5_time_to_join
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(80)
PEER_COUNTS = (2, 5, 10)


def _join(peers: int, dataset: str, engine: str):
    from repro.workload import CDSSWorkloadGenerator, WorkloadConfig
    from repro.bench.experiments import ENGINES

    def setup():
        generator = CDSSWorkloadGenerator(
            WorkloadConfig(peers=peers, dataset=dataset, seed=0)
        )
        cdss = generator.build_cdss(planner=ENGINES[engine]())
        generator.record_insertions(cdss, generator.insertions(BASE))
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_join_2peers_integer_db2(benchmark):
    benchmark.pedantic(_run, setup=_join(2, "integer", ENGINE_DB2), rounds=3)


def bench_join_2peers_integer_tukwila(benchmark):
    benchmark.pedantic(
        _run, setup=_join(2, "integer", ENGINE_TUKWILA), rounds=3
    )


def bench_join_5peers_string_db2(benchmark):
    benchmark.pedantic(_run, setup=_join(5, "string", ENGINE_DB2), rounds=3)


def bench_join_5peers_string_tukwila(benchmark):
    benchmark.pedantic(
        _run, setup=_join(5, "string", ENGINE_TUKWILA), rounds=3
    )


def bench_fig5_full_series(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_time_to_join(
            peer_counts=PEER_COUNTS, base_per_peer=BASE
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    # Join time grows with the number of peers for every configuration.
    for dataset in ("integer", "string"):
        for engine in (ENGINE_DB2, ENGINE_TUKWILA):
            series = [
                seconds
                for _, seconds in result.series(
                    "peers", "seconds", dataset=dataset, engine=engine
                )
            ]
            assert monotone_nondecreasing(series, slack=0.25), (
                f"join time should grow with peers ({dataset}/{engine}): "
                f"{series}"
            )
    # String loads cost at least as much as integer loads at the largest
    # peer count (bigger tuples, same cardinalities).
    largest = PEER_COUNTS[-1]
    for engine in (ENGINE_DB2, ENGINE_TUKWILA):
        assert result.value(
            "seconds", peers=largest, dataset="string", engine=engine
        ) > 0.5 * result.value(
            "seconds", peers=largest, dataset="integer", engine=engine
        )
