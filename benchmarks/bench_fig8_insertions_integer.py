"""Figure 8 — Incremental insertion scalability, integer dataset.

Same protocol as Figure 7 but with small (hashed-integer) tuples, which is
where the paper scaled to 20 peers ("with integers the approach scaled to
upwards of 20 peers (already larger than most real bioinformatics
confederations)").
"""

from conftest import scaled

from repro.bench import ENGINE_DB2, ENGINE_TUKWILA, fig8_insertions_integer
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(80)
PEER_COUNTS = (2, 5, 10, 20)


def _cell(peers: int, engine: str, fraction: float):
    from repro.bench.experiments import _populated

    def setup():
        generator, cdss = _populated(peers, BASE, "integer", engine)
        count = max(1, int(BASE * fraction))
        generator.record_insertions(
            cdss, generator.insertions(per_peer=count)
        )
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_insert_1pct_20peers_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(20, ENGINE_DB2, 0.01), rounds=3)


def bench_insert_1pct_20peers_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(20, ENGINE_TUKWILA, 0.01), rounds=3)


def bench_insert_10pct_10peers_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(10, ENGINE_DB2, 0.10), rounds=3)


def bench_insert_10pct_10peers_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(10, ENGINE_TUKWILA, 0.10), rounds=3)


def bench_fig8_full_series(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_insertions_integer(
            peer_counts=PEER_COUNTS, base_per_peer=BASE
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    for engine in (ENGINE_DB2, ENGINE_TUKWILA):
        for fraction in (0.01, 0.10):
            series = [
                s
                for _, s in result.series(
                    "peers", "seconds", engine=engine, fraction=fraction
                )
            ]
            assert monotone_nondecreasing(series, slack=0.35), (
                f"insertion time should grow with peers "
                f"({engine}, {fraction:.0%}): {series}"
            )
    # The 20-peer configuration completes — the scalability claim.
    assert result.value(
        "seconds", peers=20, engine=ENGINE_TUKWILA, fraction=0.10
    ) > 0
