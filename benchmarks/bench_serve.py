"""Closed-loop serving benchmark: the HTAP front door under load.

Boots a :class:`repro.serve.ReproServer` over a synthetic CDSS workload
and drives it with hundreds of concurrent client sessions (one thread +
one keep-alive connection each), writing ``BENCH_serve.json``
(``repro/bench-serve@1``).  Three phases:

* **steady** — every session loops prepared-statement executions
  (parameterized key lookups, ordered/limited scans, a recursive
  program) against the pinned snapshot; reports p50/p95/p99 latency,
  throughput, and rows/sec/CPU-sec;
* **mid_exchange** — the same closed loop, but a writer session stages
  peer edits and runs a publish *while the readers are in flight*.  The
  JSON records the publish window, how many reads completed during it
  (the no-starvation evidence), mid-exchange latency percentiles, and
  the admission counters (peak in-flight);
* **admission_pressure** — a second server with deliberately tiny
  admission limits under a synchronized burst; records how many requests
  were rejected with 503 (graceful degradation, not queue collapse).

The server and the clients share one Python process (and its GIL) — an
honest closed loop on the 1-CPU CI container, and exactly why the
efficiency metrics (CPU seconds, rows/sec/CPU-sec, peak RSS) are
reported next to the latency numbers.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --subprocess

``--subprocess`` adds a smoke phase that boots the real CLI
(``python -m repro serve spec.json --port 0``) in a child process, runs
a concurrent burst plus one publish against it, and asserts a clean
shutdown — the CI smoke job's entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import (  # noqa: E402
    efficiency_snapshot,
    rows_per_cpu_second,
)
from repro.serve import ReproServer, ServeClient, ServeHTTPError  # noqa: E402
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-serve@1"


# ---------------------------------------------------------------------------
# Workload and statements
# ---------------------------------------------------------------------------


def build_workload(peers: int, base_per_peer: int, seed: int):
    """A multi-peer integer-dataset CDSS, exchanged to a fixpoint."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()
    base = generator.insertions(base_per_peer)
    generator.record_insertions(cdss, base)
    cdss.update_exchange()
    keys = [update.key for update in base]
    return generator, cdss, keys


def statement_texts(generator) -> dict[str, dict]:
    """The serving mix, as (kind, text, params) wire requests."""
    layout = generator.layouts[0]
    relation = layout.relation_name(0)
    width = len(layout.partitions[0])
    columns = ", ".join(f"x{i}" for i in range(width))
    mix = {
        "lookup": {
            "kind": "query",
            "text": f"ans({columns}) :- {relation}(k, {columns})",
            "params": ["k"],
        },
        "scan": {
            "kind": "query",
            "text": f"ans(k, x0) :- {relation}(k, {columns})",
            "params": [],
        },
        "program": {
            "kind": "program",
            "text": f"ans(k) :- {relation}(k, {columns})",
            "params": [],
        },
    }
    for other in generator.layouts:
        if len(other.partitions) >= 2:
            left = other.relation_name(0)
            right = other.relation_name(1)
            lw = len(other.partitions[0])
            rw = len(other.partitions[1])
            lvars = ", ".join(f"a{i}" for i in range(lw))
            rvars = ", ".join(f"b{i}" for i in range(rw))
            mix["join"] = {
                "kind": "query",
                "text": (
                    f"ans(k, a0, b0) :- {left}(k, {lvars}), "
                    f"{right}(k, {rvars})"
                ),
                "params": [],
            }
            break
    return mix


def prepare_statements(client: ServeClient, mix: dict[str, dict]) -> dict[str, str]:
    ids = {}
    for name, request in mix.items():
        prepared = client.prepare(
            request["text"], params=request["params"], kind=request["kind"]
        )
        ids[name] = prepared["statement"]
    return ids


# ---------------------------------------------------------------------------
# The serving tier, in a background thread
# ---------------------------------------------------------------------------


class ServerThread:
    """Runs one ReproServer on its own asyncio loop in a daemon thread."""

    def __init__(self, cdss, **server_kwargs) -> None:
        self._cdss = cdss
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self.server: ReproServer | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = ReproServer(self._cdss, port=0, **self._kwargs)
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start")
        return self

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def __exit__(self, *_exc) -> None:
        try:
            with ServeClient(port=self.port, timeout=10) as client:
                client.shutdown()
        except Exception:
            pass
        self._thread.join(timeout=60)


# ---------------------------------------------------------------------------
# Client sessions
# ---------------------------------------------------------------------------


class SessionResult:
    __slots__ = ("records", "rows", "errors")

    def __init__(self) -> None:
        #: (start perf_counter, end perf_counter) per successful request.
        self.records: list[tuple[float, float]] = []
        self.rows = 0
        self.errors: dict[int, int] = {}


def run_session(
    port: int,
    statements: dict[str, str],
    keys: list[object],
    seed: int,
    requests: int | None,
    stop: threading.Event | None,
    out: list[SessionResult],
    start_barrier: threading.Barrier | None = None,
) -> None:
    rng = random.Random(seed)
    result = SessionResult()
    names = list(statements)
    weights = {"lookup": 6, "scan": 2, "join": 1, "program": 1}
    population = [n for n in names for _ in range(weights.get(n, 1))]
    client = ServeClient(port=port, timeout=120)
    if start_barrier is not None:
        start_barrier.wait()
    sent = 0
    try:
        while (requests is None or sent < requests) and not (
            stop is not None and stop.is_set()
        ):
            name = rng.choice(population)
            kwargs: dict = {}
            if name == "lookup":
                kwargs["bindings"] = {"k": rng.choice(keys)}
            elif name == "scan":
                kwargs["order"] = ["-x0"]
                kwargs["limit"] = 25
            begin = time.perf_counter()
            try:
                payload = client.execute(statements[name], **kwargs)
                result.records.append((begin, time.perf_counter()))
                result.rows += payload["count"]
            except ServeHTTPError as error:
                result.errors[error.status] = (
                    result.errors.get(error.status, 0) + 1
                )
            sent += 1
    finally:
        client.close()
        out.append(result)


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1)))
    return ordered[index]


def summarize(
    results: list[SessionResult],
    wall: float,
    cpu: float,
    window: tuple[float, float] | None = None,
) -> dict:
    """Latency/throughput/efficiency summary over session results.

    ``window`` restricts the percentile summary to requests *completing*
    inside it (the mid-publish view).
    """
    latencies = []
    completed_in_window = 0
    for result in results:
        for begin, end in result.records:
            if window is not None and not (window[0] <= end <= window[1]):
                continue
            completed_in_window += 1
            latencies.append((end - begin) * 1000.0)
    latencies.sort()
    total_requests = sum(len(r.records) for r in results)
    total_rows = sum(r.rows for r in results)
    errors: dict[str, int] = {}
    for result in results:
        for status, count in result.errors.items():
            errors[str(status)] = errors.get(str(status), 0) + count
    summary = {
        "sessions": len(results),
        "requests": total_requests,
        "rows": total_rows,
        "errors": errors,
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "throughput_rps": total_requests / wall if wall > 0 else 0.0,
        "rows_per_cpu_second": rows_per_cpu_second(total_rows, cpu),
        "latency_ms": {
            "count": len(latencies),
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }
    if window is not None:
        summary["completed_in_window"] = completed_in_window
    return summary


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------


def run_steady(port, statements, keys, sessions, requests) -> dict:
    out: list[SessionResult] = []
    barrier = threading.Barrier(sessions + 1)
    threads = [
        threading.Thread(
            target=run_session,
            args=(port, statements, keys, 1000 + i, requests, None, out, barrier),
        )
        for i in range(sessions)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    begin, cpu0 = time.perf_counter(), time.process_time()
    for t in threads:
        t.join()
    wall = time.perf_counter() - begin
    cpu = time.process_time() - cpu0
    return summarize(out, wall, cpu)


def run_mid_exchange(
    port, statements, keys, generator, sessions, insert_per_peer
) -> dict:
    """Readers in flight while a writer edits + publishes."""
    stop = threading.Event()
    out: list[SessionResult] = []
    barrier = threading.Barrier(sessions + 1)
    threads = [
        threading.Thread(
            target=run_session,
            args=(port, statements, keys, 2000 + i, None, stop, out, barrier),
        )
        for i in range(sessions)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    begin, cpu0 = time.perf_counter(), time.process_time()
    writer = ServeClient(port=port, timeout=300)
    try:
        time.sleep(0.3)  # let the closed loop reach steady state
        edits = []
        for update in generator.insertions(insert_per_peer):
            for relation, row in update.rows.items():
                edits.append(
                    {"op": "insert", "relation": relation, "row": list(row)}
                )
        writer.edit(edits)
        health_before = writer.health()
        change_cursor = writer.changes()["version"]
        publish_begin = time.perf_counter()
        report = writer.publish()
        publish_end = time.perf_counter()
        time.sleep(0.3)  # post-publish tail against the fresh snapshot
        stream = writer.changes(since=change_cursor)
        stats = writer.stats()
    finally:
        stop.set()
        for t in threads:
            t.join()
        writer.close()
    wall = time.perf_counter() - begin
    cpu = time.process_time() - cpu0
    summary = summarize(out, wall, cpu)
    summary["during_publish"] = summarize(
        out, publish_end - publish_begin, 0.0, (publish_begin, publish_end)
    )
    del summary["during_publish"]["cpu_seconds"]
    del summary["during_publish"]["rows_per_cpu_second"]
    summary["publish"] = {
        "seconds": publish_end - publish_begin,
        "inserted": report["inserted"],
        "snapshot_version_before": health_before["snapshot_version"],
        "snapshot_version_after": report["snapshot_version"],
        "staged_edits": len(edits),
    }
    summary["changes"] = {
        "version": stream["version"],
        "batches": len(stream["changes"]),
        "inserted_rows": sum(
            len(entry["inserted"])
            for batch in stream["changes"]
            for entry in batch["relations"].values()
        ),
    }
    summary["admission"] = stats["admission"]
    summary["snapshot"] = stats["snapshot"]
    return summary


def run_admission_pressure(cdss, generator, keys, burst, requests) -> dict:
    """A synchronized burst against deliberately tiny admission limits."""
    mix = statement_texts(generator)
    with ServerThread(
        cdss, max_inflight=2, max_queue=2, timeout=30.0, readers=2
    ) as running:
        with ServeClient(port=running.port) as setup:
            statements = prepare_statements(setup, mix)
        out: list[SessionResult] = []
        barrier = threading.Barrier(burst + 1)
        threads = [
            threading.Thread(
                target=run_session,
                args=(
                    running.port,
                    statements,
                    keys,
                    3000 + i,
                    requests,
                    None,
                    out,
                    barrier,
                ),
            )
            for i in range(burst)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        begin, cpu0 = time.perf_counter(), time.process_time()
        for t in threads:
            t.join()
        wall = time.perf_counter() - begin
        cpu = time.process_time() - cpu0
        with ServeClient(port=running.port) as reader:
            stats = reader.stats()
    summary = summarize(out, wall, cpu)
    summary["admission"] = stats["admission"]
    summary["rejected_503"] = summary["errors"].get("503", 0)
    summary["timeout_504"] = summary["errors"].get("504", 0)
    return summary


def run_subprocess_smoke(cdss, generator, keys, sessions, requests) -> dict:
    """Boot the real CLI in a child process; burst + publish + shutdown."""
    mix = statement_texts(generator)
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "serve_spec.json"
        cdss.to_spec().save(spec_path)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(spec_path),
                "--port",
                "0",
                "--max-inflight",
                "64",
                "--max-queue",
                "256",
            ],
            cwd=REPO_ROOT,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            if "repro-serve listening on " not in line:
                raise RuntimeError(f"unexpected server banner: {line!r}")
            url = line.strip().rsplit(" ", 1)[-1]
            port = int(url.rsplit(":", 1)[-1])
            with ServeClient(port=port, timeout=120) as setup:
                statements = prepare_statements(setup, mix)
            out: list[SessionResult] = []
            threads = [
                threading.Thread(
                    target=run_session,
                    args=(port, statements, keys, 4000 + i, requests, None, out),
                )
                for i in range(sessions)
            ]
            begin = time.perf_counter()
            for t in threads:
                t.start()
            with ServeClient(port=port, timeout=300) as writer:
                update = generator.insertions(1)[0]
                writer.edit(
                    [
                        {"op": "insert", "relation": rel, "row": list(row)}
                        for rel, row in update.rows.items()
                    ]
                )
                change_cursor = writer.changes()["version"]
                publish = writer.publish()
                stream = writer.changes(since=change_cursor)
            for t in threads:
                t.join()
            wall = time.perf_counter() - begin
            with ServeClient(port=port, timeout=60) as closer:
                stats = closer.stats()
                closer.shutdown()
            returncode = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        summary = summarize(out, wall, 0.0)
        del summary["cpu_seconds"]
        del summary["rows_per_cpu_second"]
        summary["publish"] = {
            "inserted": publish["inserted"],
            "snapshot_version": publish["snapshot_version"],
        }
        summary["changes"] = {
            "version": stream["version"],
            "batches": len(stream["changes"]),
        }
        if not stream["changes"]:
            raise RuntimeError("publish produced no change-stream batch")
        summary["admission"] = stats["admission"]
        summary["clean_exit"] = returncode == 0
        summary["returncode"] = returncode
        if returncode != 0:
            raise RuntimeError(
                f"serve subprocess exited with {returncode}"
            )
        return summary


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument(
        "--subprocess",
        action="store_true",
        help="also smoke-test the real CLI server in a child process",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "result path (default: BENCH_serve.json at the repo root; "
            "--quick writes BENCH_serve_quick.json unless --out is given)"
        ),
    )
    args = parser.parse_args(argv)
    if args.quick:
        peers, base = 3, 60
        steady_sessions, steady_requests = 8, 15
        mid_sessions, insert_per_peer = 24, 4
        burst, burst_requests = 12, 4
        sub_sessions, sub_requests = 4, 6
    else:
        peers, base = 4, 150
        steady_sessions, steady_requests = 32, 30
        mid_sessions, insert_per_peer = 200, 6
        burst, burst_requests = 48, 4
        sub_sessions, sub_requests = 8, 10
    if args.out is None:
        suffix = "_quick" if args.quick else ""
        args.out = REPO_ROOT / f"BENCH_serve{suffix}.json"

    print(
        f"serving benchmark: peers={peers} base={base}/peer "
        f"steady={steady_sessions}x{steady_requests} "
        f"mid-exchange sessions={mid_sessions}"
    )
    generator, cdss, keys = build_workload(peers, base, args.seed)
    mix = statement_texts(generator)
    phases: dict[str, dict] = {}

    with ServerThread(
        cdss, max_inflight=256, max_queue=1024, timeout=60.0, readers=4
    ) as running:
        with ServeClient(port=running.port) as setup:
            statements = prepare_statements(setup, mix)
        phases["steady"] = run_steady(
            running.port, statements, keys, steady_sessions, steady_requests
        )
        steady = phases["steady"]
        print(
            f"  steady: {steady['requests']} requests "
            f"{steady['throughput_rps']:.0f} rps "
            f"p50={steady['latency_ms']['p50']:.2f}ms "
            f"p95={steady['latency_ms']['p95']:.2f}ms "
            f"rows/cpu-s={steady['rows_per_cpu_second']:.0f}"
        )
        phases["mid_exchange"] = run_mid_exchange(
            running.port,
            statements,
            keys,
            generator,
            mid_sessions,
            insert_per_peer,
        )
        mid = phases["mid_exchange"]
        print(
            f"  mid-exchange: {mid['sessions']} sessions, publish "
            f"{mid['publish']['seconds']*1000:.0f}ms, "
            f"{mid['during_publish']['completed_in_window']} reads completed "
            f"during publish, p95={mid['latency_ms']['p95']:.2f}ms, "
            f"peak in-flight={mid['admission']['peak_in_flight']}"
        )

    phases["admission_pressure"] = run_admission_pressure(
        cdss, generator, keys, burst, burst_requests
    )
    pressure = phases["admission_pressure"]
    print(
        f"  admission pressure: {pressure['requests'] } ok, "
        f"{pressure['rejected_503']} rejected (503), "
        f"{pressure['timeout_504']} timeouts (504)"
    )

    if args.subprocess:
        phases["subprocess_smoke"] = run_subprocess_smoke(
            cdss, generator, keys, sub_sessions, sub_requests
        )
        smoke = phases["subprocess_smoke"]
        print(
            f"  subprocess smoke: {smoke['requests']} requests, publish ok, "
            f"clean exit={smoke['clean_exit']}"
        )

    result = {
        "format": RESULT_FORMAT,
        "workload": {
            "peers": peers,
            "base_per_peer": base,
            "dataset": "integer",
            "seed": args.seed,
            "statements": {
                name: request["text"] for name, request in mix.items()
            },
        },
        "phases": phases,
        "efficiency": efficiency_snapshot(),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
