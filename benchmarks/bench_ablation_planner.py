"""Ablation — cost-based (DB2-style) vs. prepared (Tukwila-style) planning.

Sections 5.1/5.2 describe the backend trade-off this reproduces: per-round
cost-based optimization pays planning overhead on every fixpoint round but
picks better join orders for bulk work; prepared plans amortize planning and
win when "the volume of updates is significantly smaller than the base
size".
"""

from conftest import scaled

from repro.bench import ENGINE_DB2, ENGINE_TUKWILA, ablation_planner

BASE = scaled(120)


def _small_update_cell(engine: str):
    from repro.bench.experiments import _populated

    def setup():
        generator, cdss = _populated(5, BASE, "integer", engine)
        generator.record_insertions(cdss, generator.insertions(per_peer=2))
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_small_update_db2(benchmark):
    benchmark.pedantic(_run, setup=_small_update_cell(ENGINE_DB2), rounds=5)


def bench_small_update_tukwila(benchmark):
    benchmark.pedantic(
        _run, setup=_small_update_cell(ENGINE_TUKWILA), rounds=5
    )


def bench_ablation_planner_report(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_planner(base_per_peer=BASE),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    # Prepared plans win (or tie) the small-update common case.
    tukwila_small = result.value(
        "seconds", engine=ENGINE_TUKWILA, phase="small"
    )
    db2_small = result.value("seconds", engine=ENGINE_DB2, phase="small")
    assert tukwila_small <= db2_small * 1.3
