"""Figure 4 — Deletion alternatives.

Paper setting: 5 peers, full mappings, 2000 base tuples per peer; compares
complete recomputation, the incremental PropagateDelete algorithm, and DRed
across deletion ratios of 0-90%.

Paper shape: the incremental algorithm beats full recomputation up to
roughly 80% deleted; DRed is slower than the incremental algorithm and only
beats recomputation below ~50%.
"""

from conftest import scaled

from repro.bench import fig4_deletion_alternatives
from repro.core import (
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
)

PEERS = 5
BASE = scaled(120)


def _cell(strategy: str, ratio: float):
    from repro.bench.experiments import _populated

    generator, cdss = _populated(PEERS, BASE, strategy=strategy)
    generator.record_deletions(
        cdss, generator.deletions(per_peer=max(1, int(BASE * ratio)))
    )
    return (cdss,), {}


def _run(cdss):
    return cdss.update_exchange()


def bench_incremental_10pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_INCREMENTAL, 0.1), rounds=3
    )


def bench_dred_10pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_DRED, 0.1), rounds=3
    )


def bench_recompute_10pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_RECOMPUTE, 0.1), rounds=3
    )


def bench_incremental_50pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_INCREMENTAL, 0.5), rounds=3
    )


def bench_dred_50pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_DRED, 0.5), rounds=3
    )


def bench_recompute_50pct(benchmark):
    benchmark.pedantic(
        _run, setup=lambda: _cell(STRATEGY_RECOMPUTE, 0.5), rounds=3
    )


def bench_fig4_full_series(benchmark):
    """Regenerate the full Figure 4 series and check its qualitative shape."""

    result = benchmark.pedantic(
        lambda: fig4_deletion_alternatives(
            base_per_peer=BASE, ratios=(0.1, 0.3, 0.5, 0.7, 0.9)
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()

    def t(strategy, ratio):
        return result.value("seconds", strategy=strategy, ratio=ratio)

    # Incremental deletion beats full recomputation at low-to-mid ratios.
    for ratio in (0.1, 0.3, 0.5):
        assert t(STRATEGY_INCREMENTAL, ratio) < t(STRATEGY_RECOMPUTE, ratio), (
            f"incremental should beat recomputation at {ratio:.0%}"
        )
    # DRed is slower than the incremental algorithm at low update ratios
    # (the common case the paper optimizes for).
    assert t(STRATEGY_DRED, 0.1) > t(STRATEGY_INCREMENTAL, 0.1)
    assert t(STRATEGY_DRED, 0.3) > t(STRATEGY_INCREMENTAL, 0.3)
    # Recomputation cost declines as more data is deleted; by 90% it is
    # competitive (the paper's crossover).
    assert t(STRATEGY_RECOMPUTE, 0.9) < t(STRATEGY_RECOMPUTE, 0.1)
