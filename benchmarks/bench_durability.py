"""Durability benchmark: WAL overhead, checkpoint cost, recovery speed.

Measures what the durability subsystem costs on the publish hot path and
what it buys back at restart, writing ``BENCH_durability.json``
(``repro/bench-durability@1``).  Three phases over a multi-peer
integer-dataset CDSS workload:

* **wal_overhead** — identical publish rounds (stage a batch at every
  peer, publish) against three configurations: a plain in-memory CDSS,
  a :class:`repro.DurableNode` with ``fsync="never"``, and one with
  ``fsync="always"``.  Reports per-round wall seconds and the overhead
  ratio of each durable configuration over the baseline — the price of
  the write-ahead log, with and without the disk-flush tax;
* **checkpoint** — cost of materializing the full system state (database,
  provenance tables, staged edit logs) into the SQLite store: wall
  seconds, rows persisted, resulting file size, and the WAL prune;
* **recovery** — crash the node (abandon it without a checkpoint), then
  time ``DurableNode.open`` — which replays only the WAL tail through
  the incremental maintainer — against rebuilding the same state from
  scratch with a full recompute publish.  Reports both times, the
  speedup, and the replay counters proving no recompute ran.

Run directly::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import DurableNode  # noqa: E402
from repro.bench.harness import efficiency_snapshot  # noqa: E402
from repro.durability.node import STATE_FILE  # noqa: E402
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-durability@1"


def build_workload(peers: int, base_per_peer: int, seed: int):
    """A multi-peer CDSS spec with the base data staged (unpublished),
    plus pre-drawn per-round edit batches shared by every configuration."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()
    generator.record_insertions(cdss, generator.insertions(base_per_peer))
    return generator, cdss.to_spec()


def run_rounds(generator, cdss, publish, rounds, warmup=None) -> list[float]:
    """Per-round wall seconds for stage-batch-then-publish cycles."""
    publish()  # the staged base data; not timed (one-time load)
    if warmup is not None:  # settle indexes/caches before measuring
        generator.record_insertions(cdss, warmup)
        publish()
    seconds = []
    for updates in rounds:
        begin = time.perf_counter()
        generator.record_insertions(cdss, updates)
        publish()
        seconds.append(time.perf_counter() - begin)
    return seconds


def round_summary(seconds: list[float]) -> dict:
    ordered = sorted(seconds)
    return {
        "rounds": len(seconds),
        "total_seconds": sum(seconds),
        "mean_seconds": sum(seconds) / len(seconds),
        "median_seconds": ordered[len(ordered) // 2],
        "max_seconds": max(seconds),
    }


def relation_counts(cdss) -> dict[str, int]:
    return {name: len(cdss.relation(name)) for name in cdss.relations()}


def run_wal_overhead(generator, spec, rounds, warmup, workdir: Path) -> dict:
    summary: dict[str, dict] = {}

    baseline = spec.build()
    summary["memory_baseline"] = round_summary(
        run_rounds(generator, baseline, baseline.update_exchange, rounds, warmup)
    )

    for fsync in ("never", "always"):
        node = DurableNode.create(spec, workdir / f"fsync_{fsync}", fsync=fsync)
        seconds = run_rounds(generator, node.cdss, node.publish, rounds, warmup)
        summary[f"wal_fsync_{fsync}"] = round_summary(seconds)
        summary[f"wal_fsync_{fsync}"]["wal_records"] = node.wal.last_seq
        node.close(checkpoint=False)

    base = summary["memory_baseline"]["median_seconds"]
    for key in ("wal_fsync_never", "wal_fsync_always"):
        summary[key]["overhead_vs_memory"] = (
            summary[key]["median_seconds"] / base if base > 0 else 0.0
        )
    return summary


def run_checkpoint(generator, spec, rounds, workdir: Path) -> dict:
    node = DurableNode.create(spec, workdir / "checkpoint_node")
    run_rounds(generator, node.cdss, node.publish, rounds)
    wal_records_before = node.wal.last_seq
    begin = time.perf_counter()
    node.checkpoint()
    seconds = time.perf_counter() - begin
    store = node.store
    rows = sum(store.size(bucket) for bucket in store.bucket_names())
    state_bytes = (workdir / "checkpoint_node" / STATE_FILE).stat().st_size
    # A second checkpoint of unchanged state (the steady-state cost).
    begin = time.perf_counter()
    node.checkpoint()
    idle_seconds = time.perf_counter() - begin
    summary = {
        "seconds": seconds,
        "idle_seconds": idle_seconds,
        "rows_persisted": rows,
        "state_file_bytes": state_bytes,
        "wal_records_pruned": wal_records_before,
        "relations": relation_counts(node.cdss),
    }
    node.close(checkpoint=False)
    return summary


def run_recovery(generator, spec, rounds, workdir: Path) -> dict:
    """Checkpoint covers the bulk base load; the crash loses only the
    incremental rounds — the WAL tail recovery is built to replay."""
    data_dir = workdir / "recovery_node"
    node = DurableNode.create(spec, data_dir)
    node.publish()  # the staged base data
    node.checkpoint()
    for updates in rounds:
        generator.record_insertions(node.cdss, updates)
        node.publish()
    expected = relation_counts(node.cdss)
    # Crash: abandon the node without a checkpoint or a close.
    node.wal.close()
    node.store.close()

    begin = time.perf_counter()
    recovered = DurableNode.open(data_dir)
    recovery_seconds = time.perf_counter() - begin
    strategies = {r.strategy for r in recovered.cdss.exchange_reports}
    if relation_counts(recovered.cdss) != expected:
        raise RuntimeError("recovered state diverged from the crashed node")
    if "recompute" in strategies:
        raise RuntimeError("recovery fell back to a full recompute")
    summary = {
        "recovery_seconds": recovery_seconds,
        "wal_tail_records": (
            recovered.replayed_edit_records
            + recovered.replayed_publish_records
        ),
        "replayed_edit_records": recovered.replayed_edit_records,
        "replayed_publish_records": recovered.replayed_publish_records,
        "replay_strategies": sorted(strategies),
    }
    recovered.close(checkpoint=False)

    # The alternative a node without a WAL faces: rebuild everything from
    # the spec and recompute the fixpoint over all the edits at once.
    begin = time.perf_counter()
    rebuilt = spec.build()
    for updates in rounds:
        generator.record_insertions(rebuilt, updates)
    rebuilt.update_exchange(strategy="recompute")
    recompute_seconds = time.perf_counter() - begin
    if relation_counts(rebuilt) != expected:
        raise RuntimeError("recompute reference diverged from the node")
    summary["full_recompute_seconds"] = recompute_seconds
    summary["speedup_vs_recompute"] = (
        recompute_seconds / recovery_seconds if recovery_seconds > 0 else 0.0
    )
    summary["relations"] = expected
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (seconds, not minutes)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "result path (default: BENCH_durability.json at the repo root; "
            "--quick writes BENCH_durability_quick.json unless --out is given)"
        ),
    )
    args = parser.parse_args(argv)
    if args.quick:
        peers, base, n_rounds, per_round = 3, 40, 3, 6
    else:
        peers, base, n_rounds, per_round = 10, 120, 5, 10
    if args.out is None:
        suffix = "_quick" if args.quick else ""
        args.out = REPO_ROOT / f"BENCH_durability{suffix}.json"

    print(
        f"durability benchmark: peers={peers} base={base}/peer "
        f"rounds={n_rounds}x{per_round}/peer"
    )
    generator, spec = build_workload(peers, base, args.seed)
    # One shared edit script so every configuration does identical work.
    warmup = generator.insertions(per_round)
    rounds = [generator.insertions(per_round) for _ in range(n_rounds)]

    workdir = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        overhead = run_wal_overhead(generator, spec, rounds, warmup, workdir)
        print(
            "  wal overhead: memory "
            f"{overhead['memory_baseline']['median_seconds']*1000:.1f}ms/round, "
            f"fsync=never {overhead['wal_fsync_never']['overhead_vs_memory']:.2f}x, "
            f"fsync=always {overhead['wal_fsync_always']['overhead_vs_memory']:.2f}x"
        )
        checkpoint = run_checkpoint(generator, spec, rounds, workdir)
        print(
            f"  checkpoint: {checkpoint['seconds']*1000:.0f}ms, "
            f"{checkpoint['rows_persisted']} rows, "
            f"{checkpoint['state_file_bytes']/1024:.0f} KiB sqlite"
        )
        recovery = run_recovery(generator, spec, rounds, workdir)
        print(
            f"  recovery: {recovery['recovery_seconds']*1000:.0f}ms replaying "
            f"{recovery['wal_tail_records']} WAL records vs full recompute "
            f"{recovery['full_recompute_seconds']*1000:.0f}ms "
            f"({recovery['speedup_vs_recompute']:.2f}x)"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    result = {
        "format": RESULT_FORMAT,
        "workload": {
            "peers": peers,
            "base_per_peer": base,
            "rounds": n_rounds,
            "insert_per_peer_per_round": per_round,
            "dataset": "integer",
            "seed": args.seed,
        },
        "phases": {
            "wal_overhead": overhead,
            "checkpoint": checkpoint,
            "recovery": recovery,
        },
        "efficiency": efficiency_snapshot(),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
