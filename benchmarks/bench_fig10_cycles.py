"""Figure 10 — Effect of cycles on instance size and insertion cost.

Paper setting: 5 peers averaging 2 neighbours each, with 0-3 manually added
cycles; measure incremental insertion time on both engines and the number of
tuples at fixpoint.

Paper shape: both the fixpoint size and the running time grow with the
number of cycles, with time growing at a somewhat higher rate than the
instance ("not only are the instance sizes growing, but the actual number
of iterations required through the cycle also increases").
"""

from conftest import scaled

from repro.bench import ENGINE_DB2, ENGINE_TUKWILA, fig10_cycles
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(30)
INSERTS = scaled(4)
CYCLES = (0, 1, 2, 3)


def _cell(cycles: int, engine: str):
    from repro.bench.experiments import _populated

    def setup():
        generator, cdss = _populated(
            5,
            BASE,
            "integer",
            engine,
            extra_cycles=cycles,
            topology="pairs",
        )
        generator.record_insertions(
            cdss, generator.insertions(per_peer=INSERTS)
        )
        return (cdss,), {}

    return setup


def _run(cdss):
    return cdss.update_exchange()


def bench_cycles0_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(0, ENGINE_TUKWILA), rounds=3)


def bench_cycles3_tukwila(benchmark):
    benchmark.pedantic(_run, setup=_cell(3, ENGINE_TUKWILA), rounds=3)


def bench_cycles0_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(0, ENGINE_DB2), rounds=3)


def bench_cycles3_db2(benchmark):
    benchmark.pedantic(_run, setup=_cell(3, ENGINE_DB2), rounds=3)


def bench_fig10_full_series(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_cycles(
            cycle_counts=CYCLES, base_per_peer=BASE, insert_per_peer=INSERTS
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()
    # The fixpoint instance grows with the number of cycles.
    tuples = [
        value
        for _, value in result.series(
            "cycles", "tuples", engine=ENGINE_TUKWILA
        )
    ]
    assert monotone_nondecreasing(tuples)
    assert tuples[-1] > tuples[0]
    # Running time trends upward with cycles on both engines.
    for engine in (ENGINE_DB2, ENGINE_TUKWILA):
        series = [
            s for _, s in result.series("cycles", "seconds", engine=engine)
        ]
        assert series[-1] > series[0] * 0.8, (
            f"time should not collapse as cycles are added ({engine}): "
            f"{series}"
        )
