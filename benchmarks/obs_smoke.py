"""Observability smoke: scrape ``/metrics`` around a publish, diff counters.

The end-to-end check the CI ``obs-smoke`` job runs:

1. boot a durable serve node as a real subprocess
   (``python -m repro serve spec.json --port 0 --data-dir ... --trace ...``);
2. scrape ``GET /metrics`` (Prometheus text exposition), run one query
   and one publish through the HTTP API, scrape again;
3. diff the two scrapes: every counter must be monotonically
   non-decreasing, the counters the publish drives (requests, publishes,
   exchange rounds, WAL appends, snapshot refreshes, admission) must
   strictly increase, and all five instrumented layer families —
   engine, parallel, admission, index, durability — must be present;
4. shut the node down and check the exported trace JSONL parses and
   contains the publish span tree.

Run directly::

    PYTHONPATH=src python benchmarks/obs_smoke.py

Leaves ``obs_trace.jsonl`` (the trace artifact CI uploads) and
``obs_metrics_diff.json`` in the working directory.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

REQUIRED_FAMILIES = (
    "repro_engine_",
    "repro_parallel_",
    "repro_admission_",
    "repro_index_",
    "repro_wal_",
)

#: Counters one query + one publish must strictly increase.
MUST_INCREASE = (
    "repro_serve_requests_total",
    "repro_serve_publishes_total",
    "repro_exchange_publishes_total",
    "repro_engine_rounds_total",
    "repro_wal_appends_total",
    "repro_snapshot_refreshes_total",
    "repro_admission_admitted_total",
)

SPEC = {
    "format": "repro/system-spec@1",
    "name": "obs-smoke",
    "peers": [
        {"name": "P1", "relations": [{"name": "R", "attributes": ["a", "b"]}]},
        {"name": "P2", "relations": [{"name": "S", "attributes": ["a", "b"]}]},
    ],
    "mappings": [{"name": "m", "tgd": "R(x, y) -> S(x, y)"}],
    "edits": [{"op": "+", "relation": "R", "row": [1, 2]}],
}


def parse_exposition(text: str) -> dict[str, float]:
    """Prometheus text -> {series (name + labels): value}."""
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        series[key] = float(value)
    return series


def counters_only(series: dict[str, float]) -> dict[str, float]:
    """Drop gauges/histogram sums: keep _total, _bucket, _count series."""
    return {
        key: value
        for key, value in series.items()
        if "_total" in key or "_bucket" in key or "_count" in key
    }


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="obs-smoke-"))
    spec_path = workdir / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    trace_path = Path("obs_trace.jsonl")
    trace_path.unlink(missing_ok=True)

    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(spec_path),
            "--port",
            "0",
            "--data-dir",
            str(workdir / "node"),
            "--trace",
            str(trace_path),
            "--duration",
            "120",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    problems: list[str] = []
    try:
        banner = process.stdout.readline().strip()
        if "listening on" not in banner:
            rest = process.stdout.read()
            print(f"server failed to boot: {banner}\n{rest}")
            return 1
        url = banner.split()[-1]
        print(f"serve node up at {url}")
        with ServeClient.from_url(url, timeout=30.0) as client:
            before_text = client.metrics()
            before = parse_exposition(before_text)
            # Drive every layer: one snapshot-isolated read, one edit,
            # one durable publish.
            client.query("ans(x, y) :- S(x, y)")
            client.insert("R", (3, 4))
            report = client.publish()
            print(
                f"published: +{report['inserted']} rows, snapshot "
                f"v{report['snapshot_version']}"
            )
            after_text = client.metrics()
            after = parse_exposition(after_text)
            client.shutdown()
        process.wait(timeout=30)

        for family in REQUIRED_FAMILIES:
            if not any(key.startswith(family) for key in after):
                problems.append(f"family {family}* missing from /metrics")
        for key, value in counters_only(before).items():
            if after.get(key, 0.0) < value:
                problems.append(
                    f"counter went backwards: {key} {value} -> "
                    f"{after.get(key)}"
                )
        for name in MUST_INCREASE:
            if after.get(name, 0.0) <= before.get(name, 0.0):
                problems.append(
                    f"expected {name} to increase "
                    f"({before.get(name, 0.0)} -> {after.get(name, 0.0)})"
                )

        diff = {
            key: {"before": before.get(key, 0.0), "after": value}
            for key, value in sorted(counters_only(after).items())
            if value != before.get(key, 0.0)
        }
        Path("obs_metrics_diff.json").write_text(
            json.dumps(diff, indent=2) + "\n"
        )
        print(f"{len(diff)} counter series moved across the publish")

        if not trace_path.exists() or not trace_path.read_text().strip():
            problems.append(f"no trace exported to {trace_path}")
        else:
            spans = [
                json.loads(line)
                for line in trace_path.read_text().splitlines()
            ]
            names = {span["name"] for span in spans}
            print(f"trace: {len(spans)} spans, names={sorted(names)}")
            for expected in ("publish", "exchange", "wal-append"):
                if expected not in names:
                    problems.append(f"trace is missing a {expected!r} span")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    if problems:
        for problem in problems:
            print(f"OBS SMOKE FAILURE: {problem}")
        return 1
    print("obs smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
