"""Figure 6 — Initial instance sizes.

Paper setting: after the initial computation from 10,000 base insertions,
plot the total number of tuples and the database size (MB) against the
number of peers, for the string and integer datasets.

Paper shape: #tuples grows with peers (mappings replicate data down the
chain); the string database is several times larger than the integer one in
bytes while holding the same number of tuples.
"""

from conftest import scaled

from repro.bench import fig6_instance_size
from repro.bench.harness import monotone_nondecreasing

BASE = scaled(80)
PEER_COUNTS = (2, 5, 10)


def bench_fig6_initial_instance_size(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_instance_size(
            peer_counts=PEER_COUNTS, base_per_peer=BASE
        ),
        rounds=1,
        iterations=1,
    )
    result.print_table()

    # Tuple counts grow with peers.
    tuples = [
        value
        for _, value in result.series("peers", "tuples", dataset="integer")
    ]
    assert monotone_nondecreasing(tuples)
    assert tuples[-1] > tuples[0]

    # String bytes dominate integer bytes at every size.
    for peers in PEER_COUNTS:
        string_bytes = result.value("bytes", peers=peers, dataset="string")
        integer_bytes = result.value("bytes", peers=peers, dataset="integer")
        assert string_bytes > 2 * integer_bytes, (
            f"string DB should be much larger at {peers} peers: "
            f"{string_bytes} vs {integer_bytes}"
        )
