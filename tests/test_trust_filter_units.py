"""Unit tests for exchange_head_filters composition and misc corners."""

from repro.bench.harness import timed
from repro.provenance import (
    ENCODING_COMPOSITE,
    ProvenanceEncoding,
    TrustCondition,
    TrustPolicy,
    exchange_head_filters,
    trust_label,
)
from repro.schema import (
    InternalSchema,
    LOCAL_RULE_PREFIX,
    PeerSchema,
    RelationSchema,
    SchemaMapping,
)


def internal_and_encoding(mappings=None):
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
        ),
        mappings
        or (SchemaMapping.parse("m", "R(x) -> S(x)"),),
    )
    return internal, ProvenanceEncoding(internal, style=ENCODING_COMPOSITE)


class TestExchangeHeadFilters:
    def test_no_policies_no_filters(self):
        internal, encoding = internal_and_encoding()
        assert exchange_head_filters(internal, encoding, {}) == {}

    def test_trivial_policies_no_filters(self):
        internal, encoding = internal_and_encoding()
        policies = {"P2": TrustPolicy("P2")}
        assert exchange_head_filters(internal, encoding, policies) == {}

    def test_target_peer_condition_attached(self):
        internal, encoding = internal_and_encoding()
        policy = TrustPolicy("P2")
        policy.set_mapping_condition(
            "m", TrustCondition("even", lambda row: row[0] % 2 == 0)
        )
        filters = exchange_head_filters(internal, encoding, {"P2": policy})
        label = trust_label("m", 0)
        assert label in filters
        assert filters[label]((2,)) and not filters[label]((1,))

    def test_source_peer_condition_not_attached(self):
        # P1 is m's SOURCE; its condition on m does not filter derivations
        # into P2 in the neutral (global) exchange.
        internal, encoding = internal_and_encoding()
        policy = TrustPolicy("P1")
        policy.set_mapping_condition(
            "m", TrustCondition("never", lambda row: False)
        )
        filters = exchange_head_filters(internal, encoding, {"P1": policy})
        assert filters == {}

    def test_perspective_condition_conjoined(self):
        internal, encoding = internal_and_encoding()
        p2 = TrustPolicy("P2")
        p2.set_mapping_condition(
            "m", TrustCondition("small", lambda row: row[0] < 10)
        )
        p1 = TrustPolicy("P1")
        p1.set_mapping_condition(
            "m", TrustCondition("even", lambda row: row[0] % 2 == 0)
        )
        filters = exchange_head_filters(
            internal, encoding, {"P1": p1, "P2": p2}, perspective="P1"
        )
        condition = filters[trust_label("m", 0)]
        assert condition((2,))
        assert not condition((3,))  # odd: perspective says no
        assert not condition((12,))  # big: target says no

    def test_perspective_token_filters_on_local_rules(self):
        internal, encoding = internal_and_encoding()
        policy = TrustPolicy("P2")
        policy.distrust_token("R", (1,))
        filters = exchange_head_filters(
            internal, encoding, {"P2": policy}, perspective="P2"
        )
        token_filter = filters[LOCAL_RULE_PREFIX + "R"]
        assert not token_filter((1,))
        assert token_filter((2,))

    def test_multi_head_mapping_gets_filter_per_head(self):
        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a", "b")),)),
                PeerSchema(
                    "P2",
                    (
                        RelationSchema("S", ("a",)),
                        RelationSchema("T", ("b",)),
                    ),
                ),
            ),
            (SchemaMapping.parse("m", "R(a, b) -> S(a), T(b)"),),
        )
        encoding = ProvenanceEncoding(internal)
        policy = TrustPolicy("P2")
        policy.set_mapping_condition(
            "m", TrustCondition("positive", lambda row: row[0] > 0)
        )
        filters = exchange_head_filters(internal, encoding, {"P2": policy})
        assert trust_label("m", 0) in filters
        assert trust_label("m", 1) in filters


class TestEvaluateWithConditions:
    def test_per_target_valuation(self):
        """One mapping node deriving two targets can trust one and not the
        other (data-dependent conditions are per derived tuple)."""
        from repro.core.exchange import ExchangeSystem
        from repro.provenance import BooleanSemiring, build_provenance_graph

        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a", "b")),)),
                PeerSchema(
                    "P2",
                    (
                        RelationSchema("S", ("a",)),
                        RelationSchema("T", ("b",)),
                    ),
                ),
            ),
            (SchemaMapping.parse("m", "R(a, b) -> S(a), T(b)"),),
        )
        system = ExchangeSystem(internal)
        system.db["R__l"].insert((1, 2))
        system.recompute()
        graph = build_provenance_graph(system.db, system.encoding)

        def node_value(node, target, inner):
            # Trust only derivations into S.
            return inner and target[0] == "S"

        values = graph.evaluate_with_conditions(
            BooleanSemiring(), lambda tok: True, node_value
        )
        assert values[("S", (1,))] is True
        assert values[("T", (2,))] is False


class TestHarnessTimed:
    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0
