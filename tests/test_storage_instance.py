"""Unit tests for repro.storage.instance."""

import pytest

from repro.storage.instance import ArityError, Instance


class TestInsertDelete:
    def test_insert_new_row_returns_true(self):
        inst = Instance("R", 2)
        assert inst.insert((1, 2)) is True
        assert (1, 2) in inst

    def test_insert_duplicate_returns_false(self):
        inst = Instance("R", 2, [(1, 2)])
        assert inst.insert((1, 2)) is False
        assert len(inst) == 1

    def test_insert_list_normalized_to_tuple(self):
        inst = Instance("R", 2)
        inst.insert([1, 2])
        assert (1, 2) in inst

    def test_insert_wrong_arity_raises(self):
        inst = Instance("R", 2)
        with pytest.raises(ArityError):
            inst.insert((1, 2, 3))

    def test_delete_present_row(self):
        inst = Instance("R", 2, [(1, 2), (3, 4)])
        assert inst.delete((1, 2)) is True
        assert (1, 2) not in inst
        assert len(inst) == 1

    def test_delete_absent_row_returns_false(self):
        inst = Instance("R", 2)
        assert inst.delete((1, 2)) is False

    def test_insert_many_counts_new_rows_only(self):
        inst = Instance("R", 1, [(1,)])
        assert inst.insert_many([(1,), (2,), (3,)]) == 2

    def test_delete_many_counts_removed_rows_only(self):
        inst = Instance("R", 1, [(1,), (2,)])
        assert inst.delete_many([(1,), (9,)]) == 1

    def test_version_bumps_on_mutation(self):
        inst = Instance("R", 1)
        v0 = inst.version
        inst.insert((1,))
        assert inst.version > v0
        v1 = inst.version
        inst.insert((1,))  # duplicate: no change
        assert inst.version == v1

    def test_clear_and_replace(self):
        inst = Instance("R", 1, [(1,), (2,)])
        inst.replace([(5,)])
        assert set(inst) == {(5,)}
        inst.clear()
        assert len(inst) == 0


class TestIndexes:
    def test_lookup_builds_index_and_finds_rows(self):
        inst = Instance("R", 3, [(1, "a", 10), (1, "b", 20), (2, "a", 30)])
        assert inst.lookup([0], (1,)) == {(1, "a", 10), (1, "b", 20)}
        assert inst.lookup([0, 1], (1, "b")) == {(1, "b", 20)}

    def test_lookup_missing_key_returns_empty(self):
        inst = Instance("R", 2, [(1, 2)])
        assert inst.lookup([0], (99,)) == frozenset()

    def test_lookup_no_columns_returns_all(self):
        inst = Instance("R", 2, [(1, 2), (3, 4)])
        assert inst.lookup([], ()) == {(1, 2), (3, 4)}

    def test_index_maintained_after_insert(self):
        inst = Instance("R", 2, [(1, 2)])
        inst.ensure_index([0])
        inst.insert((1, 3))
        assert inst.lookup([0], (1,)) == {(1, 2), (1, 3)}

    def test_index_maintained_after_delete(self):
        inst = Instance("R", 2, [(1, 2), (1, 3)])
        inst.ensure_index([0])
        inst.delete((1, 2))
        assert inst.lookup([0], (1,)) == {(1, 3)}

    def test_index_bucket_removed_when_empty(self):
        inst = Instance("R", 2, [(1, 2)])
        inst.ensure_index([0])
        inst.delete((1, 2))
        assert inst.lookup([0], (1,)) == frozenset()
        assert inst.index_key_count([0]) == 0

    def test_index_out_of_range_column_raises(self):
        inst = Instance("R", 2)
        with pytest.raises(Exception):
            inst.ensure_index([5])

    def test_indexed_columns_reporting(self):
        inst = Instance("R", 2, [(1, 2)])
        inst.ensure_index([1])
        assert (1,) in inst.indexed_columns()


class TestBulkHelpers:
    def test_select(self):
        inst = Instance("R", 2, [(1, 2), (3, 4)])
        assert inst.select(lambda r: r[0] > 1) == {(3, 4)}

    def test_project(self):
        inst = Instance("R", 2, [(1, 2), (1, 3)])
        assert inst.project([0]) == {(1,)}

    def test_copy_is_independent(self):
        inst = Instance("R", 1, [(1,)])
        clone = inst.copy()
        clone.insert((2,))
        assert (2,) not in inst

    def test_estimated_bytes_strings_heavier_than_ints(self):
        small = Instance("R", 1, [(7,)])
        big = Instance("R", 1, [("x" * 100,)])
        assert big.estimated_bytes() > small.estimated_bytes()

    def test_rows_snapshot_is_frozen(self):
        inst = Instance("R", 1, [(1,)])
        snap = inst.rows()
        inst.insert((2,))
        assert snap == {(1,)}
