"""Unit tests for ExchangeSystem: recompute, perspectives, reports."""

import pytest

from repro.core.editlog import PublishDelta
from repro.core.exchange import (
    STRATEGY_INCREMENTAL,
    ExchangeError,
    ExchangeSystem,
)
from repro.datalog.planner import CostBasedPlanner, PreparedPlanner
from repro.provenance import ENCODING_PER_RULE, TrustCondition, TrustPolicy
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping


def simple_internal() -> InternalSchema:
    return InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
        ),
        (SchemaMapping.parse("m", "R(x) -> S(x)"),),
    )


class TestRecompute:
    def test_recompute_from_edbs(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert_many([(1,), (2,)])
        report = system.recompute()
        assert report.strategy == "recompute"
        assert system.instance("R") == {(1,), (2,)}
        assert system.instance("S") == {(1,), (2,)}
        assert report.inserted > 0
        assert report.seconds >= 0

    def test_recompute_clears_stale_state(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert((1,))
        system.recompute()
        system.db["R__l"].delete((1,))
        system.recompute()
        assert system.instance("S") == frozenset()

    def test_recompute_respects_rejections(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert((1,))
        system.db["S__r"].insert((1,))
        system.recompute()
        assert system.instance("S") == frozenset()
        assert system.trusted_instance("S") == {(1,)}
        assert system.input_instance("S") == {(1,)}

    def test_unknown_strategy_rejected(self):
        system = ExchangeSystem(simple_internal())
        with pytest.raises(ExchangeError):
            system.apply_delta(PublishDelta(), "bogus")

    def test_accessors(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert((1,))
        system.recompute()
        assert system.local_contributions("R") == {(1,)}
        assert system.rejections("R") == frozenset()
        assert system.total_tuples() > 0
        assert system.estimated_bytes() > 0
        snapshot = system.snapshot_outputs()
        assert snapshot["S"] == {(1,)}

    def test_both_planners_supported(self):
        for planner in (PreparedPlanner(), CostBasedPlanner()):
            system = ExchangeSystem(simple_internal(), planner=planner)
            system.db["R__l"].insert((7,))
            system.recompute()
            assert system.instance("S") == {(7,)}

    def test_per_rule_encoding_supported(self):
        system = ExchangeSystem(
            simple_internal(), encoding_style=ENCODING_PER_RULE
        )
        system.db["R__l"].insert((7,))
        system.recompute()
        assert system.instance("S") == {(7,)}
        assert system.is_consistent()


class TestApplyDelta:
    def test_mixed_delta_incremental(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert_many([(1,), (2,)])
        system.recompute()
        delta = PublishDelta(
            local_inserts={"R": {(3,)}},
            local_deletes={"R": {(1,)}},
            rejection_inserts={"S": {(2,)}},
        )
        report = system.apply_delta(delta, STRATEGY_INCREMENTAL)
        assert system.instance("R") == {(2,), (3,)}
        assert system.instance("S") == {(3,)}
        assert report.strategy == STRATEGY_INCREMENTAL
        assert system.is_consistent()

    def test_unrejection_delta(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert((1,))
        system.db["S__r"].insert((1,))
        system.recompute()
        assert system.instance("S") == frozenset()
        delta = PublishDelta(rejection_deletes={"S": {(1,)}})
        system.apply_delta(delta, STRATEGY_INCREMENTAL)
        assert system.instance("S") == {(1,)}
        assert system.is_consistent()

    def test_empty_delta_noop(self):
        system = ExchangeSystem(simple_internal())
        system.db["R__l"].insert((1,))
        system.recompute()
        before = system.db.snapshot()
        system.apply_delta(PublishDelta(), STRATEGY_INCREMENTAL)
        assert system.db.snapshot() == before


class TestPerspectives:
    """Section 4: each peer recomputes its own copy of all instances,
    'filtering the data with its own trust conditions as it does so'."""

    def _internal(self):
        return InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a",)),)),
                PeerSchema("P2", (RelationSchema("S", ("a",)),)),
                PeerSchema("P3", (RelationSchema("T", ("a",)),)),
            ),
            (
                SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
                SchemaMapping.parse("m_st", "S(x) -> T(x)"),
            ),
        )

    def test_perspective_token_distrust_filters_base_data(self):
        policy = TrustPolicy("P3")
        policy.distrust_token("R", (1,))
        system = ExchangeSystem(
            self._internal(), policies={"P3": policy}, perspective="P3"
        )
        system.db["R__l"].insert_many([(1,), (2,)])
        system.recompute()
        # In P3's copy of the world, R(1,) is not trusted at all.
        assert system.instance("R") == {(2,)}
        assert system.instance("T") == {(2,)}

    def test_perspective_peer_distrust(self):
        policy = TrustPolicy("P3")
        policy.distrust_peer("P1")
        system = ExchangeSystem(
            self._internal(), policies={"P3": policy}, perspective="P3"
        )
        system.db["R__l"].insert((1,))
        system.recompute()
        assert system.instance("T") == frozenset()

    def test_perspective_mapping_condition_composes(self):
        # P3 constrains the upstream mapping m_rs even though m_rs targets
        # P2 — perspective conditions AND with the target's own.
        policy = TrustPolicy("P3")
        policy.set_mapping_condition(
            "m_rs", TrustCondition("even only", lambda row: row[0] % 2 == 0)
        )
        system = ExchangeSystem(
            self._internal(), policies={"P3": policy}, perspective="P3"
        )
        system.db["R__l"].insert_many([(1,), (2,)])
        system.recompute()
        assert system.instance("S") == {(2,)}
        assert system.instance("T") == {(2,)}

    def test_different_perspectives_see_different_worlds(self):
        p3 = TrustPolicy("P3")
        p3.distrust_peer("P1")
        internal = self._internal()
        neutral = ExchangeSystem(internal, policies={"P3": p3})
        skeptical = ExchangeSystem(
            internal, policies={"P3": p3}, perspective="P3"
        )
        for system in (neutral, skeptical):
            system.db["R__l"].insert((1,))
            system.recompute()
        # The neutral (global) exchange keeps the data: P3's token distrust
        # is a per-perspective judgment, not a mapping condition.
        assert neutral.instance("T") == {(1,)}
        assert skeptical.instance("T") == frozenset()

    def test_perspective_incremental_consistency(self):
        policy = TrustPolicy("P3")
        policy.distrust_token("R", (1,))
        system = ExchangeSystem(
            self._internal(), policies={"P3": policy}, perspective="P3"
        )
        system.recompute()
        delta = PublishDelta(local_inserts={"R": {(1,), (2,)}})
        system.apply_delta(delta, STRATEGY_INCREMENTAL)
        assert system.instance("T") == {(2,)}
        assert system.is_consistent()
