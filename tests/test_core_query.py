"""Tests for certain-answer query evaluation (Section 2.1)."""

import pytest

from repro import CDSS
from repro.core.query import QueryError, answer_query, certain_rows
from repro.datalog.ast import SkolemValue


def cdss_with_nulls() -> CDSS:
    cdss = CDSS("q")
    cdss.add_peer("P1", {"B": ("id", "nam")})
    cdss.add_peer("P2", {"U": ("nam", "can")})
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.insert("B", (1, "x"))
    cdss.insert("B", (2, "x"))
    cdss.insert("B", (3, "y"))
    cdss.insert("U", ("y", "canon"))
    cdss.update_exchange()
    return cdss


class TestCertainAnswers:
    def test_join_on_labeled_nulls(self):
        cdss = cdss_with_nulls()
        # Both B(1,x) and B(2,x) map to U(x, f(x)) — the same null — so the
        # self-join succeeds; nulls themselves are projected away.
        answers = cdss.query("ans(x, y) :- U(x, z), U(y, z)")
        assert ("x", "x") in answers
        assert ("y", "y") in answers

    def test_null_rows_dropped_by_default(self):
        cdss = cdss_with_nulls()
        answers = cdss.query("ans(n, c) :- U(n, c)")
        assert answers == {("y", "canon")}

    def test_superset_mode_keeps_nulls(self):
        cdss = cdss_with_nulls()
        answers = cdss.query("ans(n, c) :- U(n, c)", certain=False)
        assert len(answers) == 3
        assert any(isinstance(row[1], SkolemValue) for row in answers)

    def test_constants_in_query(self):
        cdss = cdss_with_nulls()
        answers = cdss.query("ans(i) :- B(i, 'x')")
        assert answers == {(1,), (2,)}

    def test_negation_in_query(self):
        cdss = cdss_with_nulls()
        answers = cdss.query("ans(i, n) :- B(i, n), not U(n, n)")
        assert answers == {(1, "x"), (2, "x"), (3, "y")}

    def test_multi_relation_join(self):
        cdss = cdss_with_nulls()
        answers = cdss.query("ans(i, c) :- B(i, n), U(n, c)")
        assert answers == {(3, "canon")}

    def test_unknown_relation_rejected(self):
        cdss = cdss_with_nulls()
        with pytest.raises(QueryError):
            cdss.query("ans(x) :- Nope(x)")

    def test_wrong_arity_rejected(self):
        cdss = cdss_with_nulls()
        with pytest.raises(QueryError):
            cdss.query("ans(x) :- B(x)")

    def test_empty_body_rejected(self):
        cdss = cdss_with_nulls()
        system = cdss.system()
        with pytest.raises(QueryError):
            answer_query("ans(1)", system.db, system.internal)

    def test_unsafe_query_rejected(self):
        cdss = cdss_with_nulls()
        with pytest.raises(Exception):
            cdss.query("ans(x, y) :- B(x, z)")

    def test_certain_rows_helper(self):
        null = SkolemValue("f", (1,))
        rows = {(1, 2), (1, null)}
        assert certain_rows(rows) == {(1, 2)}

    def test_certain_instance_vs_instance(self):
        cdss = cdss_with_nulls()
        full = cdss.instance("U")
        certain = cdss.certain_instance("U")
        assert certain < full
        assert certain == {("y", "canon")}
