"""Tests for the evaluation hot path: plan caching, persistent deltas,
compiled plan execution, exact round accounting, and bulk index maintenance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import _strip_output
from repro.datalog import (
    CostBasedPlanner,
    DatalogError,
    NaiveEngine,
    PreparedPlanner,
    SemiNaiveEngine,
    parse_program,
)
from repro.datalog.plan import run_plan
from repro.storage import Database, Instance

TC_PROGRAM = """
    T(x, y) :- E(x, y)
    T(x, z) :- T(x, y), E(y, z)
"""


def make_db(tables):
    db = Database()
    for name, (arity, rows) in tables.items():
        db.create(name, arity, rows)
    return db


class TestPlanCache:
    def test_prepared_planner_plans_are_cached_in_engine(self):
        db = make_db({"E": (2, [(1, 2), (2, 3), (3, 4)])})
        engine = SemiNaiveEngine(PreparedPlanner())
        prog = parse_program(TC_PROGRAM)
        first = engine.run(prog, db)
        assert first.plan_cache_misses > 0
        # Delta-driven rounds re-request the same (rule, delta) plans.
        assert first.plan_cache_hits > 0

        # The first incremental pass still builds the E-delta plans ...
        db["E"].insert((4, 5))
        engine.run_insertions(prog, db, {"E": {(4, 5)}})
        # ... after which an identically shaped pass is all cache hits.
        db["E"].insert((5, 6))
        engine.run_insertions(prog, db, {"E": {(5, 6)}})
        second = engine.last_result
        assert second.plan_cache_misses == 0
        assert second.plan_cache_hit_rate == 1.0

    def test_cost_based_planner_replans_when_data_changes(self):
        db = make_db({"E": (2, [(1, 2), (2, 3), (3, 4)])})
        engine = SemiNaiveEngine(CostBasedPlanner())
        prog = parse_program(TC_PROGRAM)
        result = engine.run(prog, db)
        # Inserts bump the database version between rounds, so the
        # statistics-driven planner can never reuse a stale plan.
        assert result.plan_cache_hits == 0

    def test_invalidate_plans_forces_rebuild(self):
        db = make_db({"E": (2, [(1, 2)])})
        planner = PreparedPlanner()
        engine = SemiNaiveEngine(planner)
        prog = parse_program("T(x, y) :- E(x, y)")
        engine.run(prog, db)
        built = planner.plans_built
        engine.invalidate_plans()
        engine.run(prog, db)
        assert planner.plans_built > built

    def test_cumulative_stats_accumulate_across_runs(self):
        db = make_db({"E": (2, [(1, 2)])})
        engine = SemiNaiveEngine()
        prog = parse_program("T(x, y) :- E(x, y)")
        engine.run(prog, db)
        after_one = engine.stats.rule_applications
        engine.run(prog, db)
        assert engine.stats.rule_applications > after_one
        assert engine.last_result.rule_applications < engine.stats.rule_applications


class TestRoundAccounting:
    def test_full_run_rounds_exact(self):
        db = make_db({"E": (2, [(1, 2), (2, 3), (3, 4)])})
        result = SemiNaiveEngine().run(parse_program(TC_PROGRAM), db)
        # Round 1 (naive pass): T gets the edges via rule 1, then the
        # length-2 paths via rule 2 in the same pass.  Round 2 derives the
        # length-3 path from the deltas; round 3 derives nothing and stops.
        assert result.rounds == 3

    def test_non_recursive_stratum_is_single_round(self):
        db = make_db({"E": (1, [(1,)])})
        result = SemiNaiveEngine().run(parse_program("H(x) :- E(x)"), db)
        # H is not read by any body atom: no delta round should follow the
        # naive pass.
        assert result.rounds == 1

    def test_seeded_run_counts_only_driven_rounds(self):
        db = make_db({"E": (2, [(1, 2)])})
        prog = parse_program(TC_PROGRAM)
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        db["E"].insert((2, 3))
        engine.run_insertions(prog, db, {"E": {(2, 3)}})
        # Round 1 derives T(2,3)/T(1,3); round 2 derives nothing new.
        assert engine.last_result.rounds == 2

    def test_no_phantom_rounds_for_untouched_strata(self):
        # The second stratum's rules never read the seeded predicate, so it
        # must contribute zero rounds (the pre-fix code charged one).
        prog = parse_program(
            """
            A(x) :- E(x)
            B(x) :- V(x), not Z(x)
            """
        )
        db = make_db({"E": (1, [(1,)]), "V": (1, [(9,)]), "Z": (1, [])})
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        db["E"].insert((2,))
        engine.run_insertions(prog, db, {"E": {(2,)}})
        # Only the A-stratum runs: one delta round deriving A(2), then a
        # second showing quiescence... A is not in any body, so exactly 1.
        assert engine.last_result.rounds == 1

    def test_irrelevant_seed_runs_zero_rounds(self):
        prog = parse_program("H(x) :- E(x)")
        db = make_db({"E": (1, [(1,)]), "F": (1, [(5,)])})
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        db["F"].insert((6,))
        derived = engine.run_insertions(prog, db, {"F": {(6,)}})
        assert derived == {}
        assert engine.last_result.rounds == 0


class TestPersistentDeltas:
    def test_delta_instances_are_reused_across_runs(self):
        db = make_db({"E": (2, [(1, 2), (2, 3)])})
        prog = parse_program(TC_PROGRAM)
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        deltas_after_run = dict(engine._delta_pool._instances)
        assert deltas_after_run  # the recursion exercised delta relations
        db["E"].insert((3, 4))
        engine.run_insertions(prog, db, {"E": {(3, 4)}})
        for key, instance in deltas_after_run.items():
            assert engine._delta_pool._instances[key] is instance

    def test_replace_contents_keeps_indexes_consistent(self):
        inst = Instance("D", 2, [(1, "a"), (2, "b")])
        assert set(inst.lookup([0], (1,))) == {(1, "a")}  # materialize index
        inst.replace_contents([(2, "b"), (3, "c")])  # partial overlap
        assert set(inst.lookup([0], (3,))) == {(3, "c")}
        assert set(inst.lookup([0], (1,))) == set()
        inst.replace_contents([(4, "d")])  # complete turnover
        assert set(inst.lookup([0], (4,))) == {(4, "d")}
        assert set(inst.lookup([0], (2,))) == set()
        assert inst.rows() == {(4, "d")}


class TestBulkIndexMaintenance:
    def _reference_index(self, rows, cols):
        index = {}
        for row in rows:
            index.setdefault(tuple(row[c] for c in cols), set()).add(row)
        return index

    def test_insert_many_patches_all_indexes(self):
        inst = Instance("R", 3, [(1, "a", 10)])
        inst.ensure_index([0])
        inst.ensure_index([1, 2])
        added = inst.insert_many([(1, "a", 10), (2, "b", 20), (3, "c", 30)])
        assert added == 2
        for cols in ((0,), (1, 2)):
            expected = self._reference_index(inst.rows(), cols)
            for key, bucket in expected.items():
                assert set(inst.lookup(cols, key)) == bucket

    def test_delete_many_patches_all_indexes(self):
        rows = [(i, i % 3) for i in range(12)]
        inst = Instance("R", 2, rows)
        inst.ensure_index([1])
        removed = inst.delete_many([(0, 0), (1, 1), (99, 0)])
        assert removed == 2
        expected = self._reference_index(inst.rows(), (1,))
        for key in {(0,), (1,), (2,)}:
            assert set(inst.lookup([1], key)) == expected.get(key, set())

    def test_bulk_ops_bump_version_once(self):
        inst = Instance("R", 1)
        v0 = inst.version
        inst.insert_many([(1,), (2,), (3,)])
        assert inst.version == v0 + 1
        inst.delete_many([(1,), (2,)])
        assert inst.version == v0 + 2
        inst.insert_many([])  # no-op: version unchanged
        assert inst.version == v0 + 2

    def test_lookup_returns_live_readonly_view(self):
        inst = Instance("R", 2, [(1, "a")])
        view = inst.lookup([0], (1,))
        assert set(view) == {(1, "a")}
        inst.insert((1, "b"))
        # Zero-copy: the view reflects the mutation (it is the live bucket).
        assert set(view) == {(1, "a"), (1, "b")}


class TestStripOutputUnderO:
    def test_strip_output_raises_real_error(self):
        # Must raise even under ``python -O`` (it used to be an assert).
        assert _strip_output("R__o") == "R"
        with pytest.raises(DatalogError):
            _strip_output("R__t")


class TestExecutorSubstitutions:
    def test_execute_plan_substitution_is_mapping(self):
        from repro.datalog.parser import parse_rule
        from repro.datalog.plan import RulePlan, execute_plan
        from repro.datalog.ast import Variable

        rule = parse_rule("H(x, y) :- A(x, y)")
        source = Instance("A", 2, [(1, 2)])
        results = list(execute_plan(RulePlan(rule, (0,)), lambda i, a: source))
        assert len(results) == 1
        row, subst = results[0]
        assert row == (1, 2)
        assert dict(subst) == {Variable("x"): 1, Variable("y"): 2}
        assert subst[Variable("x")] == 1
        assert len(subst) == 2

    def test_run_plan_applies_row_filter(self):
        from repro.datalog.parser import parse_rule
        from repro.datalog.plan import RulePlan

        rule = parse_rule("H(x) :- A(x)")
        source = Instance("A", 1, [(1,), (2,), (3,)])
        rows = run_plan(
            RulePlan(rule, (0,)),
            lambda i, a: source,
            row_filter=lambda row: row[0] != 2,
        )
        assert sorted(rows) == [(1,), (3,)]


@st.composite
def random_edges(draw):
    n = draw(st.integers(2, 6))
    return draw(
        st.sets(st.tuples(st.integers(0, n), st.integers(0, n)), max_size=18)
    )


@settings(max_examples=30, deadline=None)
@given(edges=random_edges(), extra=random_edges())
def test_property_cached_engine_agrees_with_naive(edges, extra):
    """Plan-cached + persistent-delta evaluation reaches the same fixpoint
    as the naive reference, including across an incremental insertion pass
    reusing the warm engine."""
    prog = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        Loop(x) :- T(x, x)
        Safe(x) :- V(x), not Loop(x)
        """
    )
    nodes = {x for e in edges | extra for x in e}
    db = Database()
    db.create("E", 2, edges)
    db.create("V", 1, [(x,) for x in nodes])
    engine = SemiNaiveEngine()
    engine.run(prog, db)

    # Warm incremental pass through the same engine (cache + deltas reused).
    new_edges = extra - edges
    # Insertions may not reach the negated stratum incrementally; recompute
    # the negation-free part incrementally and compare the positive idbs.
    positive = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        """
    )
    for edge in new_edges:
        db["E"].insert(edge)
    engine.run_insertions(positive, db, {"E": new_edges})

    reference = Database()
    reference.create("E", 2, edges | extra)
    reference.create("V", 1, [(x,) for x in nodes])
    NaiveEngine().run(
        parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        ),
        reference,
    )
    assert db["T"].rows() == reference["T"].rows()
