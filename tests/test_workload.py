"""Tests for the synthetic SWISS-PROT workload generator (Section 6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import is_weakly_acyclic
from repro.workload import (
    ARITY,
    CDSSWorkloadGenerator,
    SWISSPROT_ATTRIBUTES,
    SwissProtGenerator,
    WorkloadConfig,
    string_hash,
    zipf_choice,
)


class TestSwissProtGenerator:
    def test_arity_is_25(self):
        assert ARITY == 25
        assert len(SWISSPROT_ATTRIBUTES) == 25

    def test_entries_deterministic(self):
        a = SwissProtGenerator(seed=7).entry(3)
        b = SwissProtGenerator(seed=7).entry(3)
        assert a == b

    def test_different_indices_differ(self):
        gen = SwissProtGenerator(seed=7)
        assert gen.entry(1) != gen.entry(2)

    def test_different_seeds_differ(self):
        assert SwissProtGenerator(0).entry(1) != SwissProtGenerator(1).entry(1)

    def test_rows_are_all_strings(self):
        row = SwissProtGenerator().entry(0).as_row()
        assert len(row) == 25
        assert all(isinstance(v, str) for v in row)

    def test_integer_rows_are_hashes(self):
        entry = SwissProtGenerator().entry(0)
        int_row = entry.as_integer_row()
        assert all(isinstance(v, int) for v in int_row)
        assert int_row[0] == string_hash(entry[0])

    def test_entries_iterator(self):
        gen = SwissProtGenerator()
        entries = list(gen.entries(5, start=10))
        assert len(entries) == 5
        assert entries[0] == gen.entry(10)

    def test_string_tuples_are_large(self):
        # SWISS-PROT tuples are "quite large" — the string/integer size gap
        # drives Figures 5-9.
        entry = SwissProtGenerator().entry(0)
        total = sum(len(v) for v in entry.as_row())
        assert total > 300


class TestZipf:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_zipf_in_range(self, seed):
        import random

        rng = random.Random(seed)
        value = zipf_choice(rng, 5)
        assert 1 <= value <= 5

    def test_zipf_skews_to_small(self):
        import random

        rng = random.Random(0)
        draws = [zipf_choice(rng, 5) for _ in range(2000)]
        assert draws.count(1) > draws.count(5)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(peers=0)
        with pytest.raises(ValueError):
            WorkloadConfig(attributes_per_peer=0)
        with pytest.raises(ValueError):
            WorkloadConfig(dataset="bogus")
        with pytest.raises(ValueError):
            WorkloadConfig(topology="star")


class TestGeneratorLayouts:
    def test_partitions_cover_attributes(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=4, seed=2))
        for layout in gen.layouts:
            covered = sorted(
                a for partition in layout.partitions for a in partition
            )
            assert covered == sorted(layout.attribute_indices)

    def test_key_attribute_added(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=2, seed=2))
        for schema in gen.layouts[0].relation_schemas():
            assert schema.attributes[0] == "entry_key"

    def test_uniform_attributes_make_full_mappings(self):
        gen = CDSSWorkloadGenerator(
            WorkloadConfig(peers=4, uniform_attributes=True, seed=3)
        )
        assert all(not m.existential_vars for m in gen.mappings)

    def test_nonuniform_attributes_can_have_existentials(self):
        gen = CDSSWorkloadGenerator(
            WorkloadConfig(
                peers=6,
                uniform_attributes=False,
                attributes_per_peer=6,
                seed=1,
            )
        )
        assert any(m.existential_vars for m in gen.mappings)

    def test_chain_topology_has_n_minus_1_mappings(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=5, seed=0))
        assert len(gen.mappings) == 4

    def test_pairs_topology_doubles_edges(self):
        gen = CDSSWorkloadGenerator(
            WorkloadConfig(peers=5, topology="pairs", seed=0)
        )
        assert len(gen.mappings) == 8

    def test_extra_cycles_add_back_edges(self):
        base = CDSSWorkloadGenerator(WorkloadConfig(peers=5, seed=0))
        cyclic = CDSSWorkloadGenerator(
            WorkloadConfig(peers=5, extra_cycles=2, seed=0)
        )
        assert len(cyclic.mappings) == len(base.mappings) + 2

    def test_generated_mappings_weakly_acyclic(self):
        for seed in range(5):
            gen = CDSSWorkloadGenerator(
                WorkloadConfig(peers=4, extra_cycles=2, seed=seed)
            )
            assert is_weakly_acyclic(gen.mappings)

    def test_deterministic_given_seed(self):
        a = CDSSWorkloadGenerator(WorkloadConfig(peers=3, seed=11))
        b = CDSSWorkloadGenerator(WorkloadConfig(peers=3, seed=11))
        assert [l.partitions for l in a.layouts] == [
            l.partitions for l in b.layouts
        ]
        assert [m.name for m in a.mappings] == [m.name for m in b.mappings]


class TestUpdateStreams:
    def test_insertions_share_key_per_entry(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=2, seed=4))
        updates = gen.insertions(per_peer=3)
        assert len(updates) == 6
        for update in updates:
            keys = {row[0] for row in update.rows.values()}
            assert keys == {update.key}

    def test_integer_dataset_rows_are_ints(self):
        gen = CDSSWorkloadGenerator(
            WorkloadConfig(peers=1, dataset="integer", seed=4)
        )
        update = gen.insertions(per_peer=1)[0]
        for row in update.rows.values():
            assert all(isinstance(v, int) for v in row)

    def test_deletions_sample_among_insertions(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=2, seed=4))
        inserted = gen.insertions(per_peer=5)
        deleted = gen.deletions(per_peer=2)
        assert len(deleted) == 4
        inserted_keys = {u.key for u in inserted}
        assert all(u.key in inserted_keys for u in deleted)
        # Deleted entries are removed from the pool.
        assert all(
            len(pool) == 3 for pool in gen.inserted_entries.values()
        )

    def test_deletions_capped_at_pool_size(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=1, seed=4))
        gen.insertions(per_peer=2)
        assert len(gen.deletions(per_peer=10)) == 2


class TestEndToEnd:
    @pytest.mark.parametrize("dataset", ["string", "integer"])
    def test_populate_and_delete_consistent(self, dataset):
        gen = CDSSWorkloadGenerator(
            WorkloadConfig(peers=3, dataset=dataset, seed=5)
        )
        cdss = gen.build_cdss()
        gen.populate(cdss, base_per_peer=10)
        system = cdss.system()
        base_tuples = system.total_tuples()
        assert base_tuples > 0
        gen.record_deletions(cdss, gen.deletions(per_peer=3))
        cdss.update_exchange()
        assert system.total_tuples() < base_tuples
        assert system.is_consistent()

    def test_data_flows_down_the_chain(self):
        gen = CDSSWorkloadGenerator(WorkloadConfig(peers=3, seed=6))
        cdss = gen.build_cdss()
        gen.populate(cdss, base_per_peer=4)
        first = gen.layouts[0]
        last = gen.layouts[-1]
        # Entries inserted at peer0 must surface at the last chain peer.
        relation = last.relation_name(0)
        instance = cdss.instance(relation)
        peer0_keys = {
            u.key for u in gen.inserted_entries[first.name]
        }
        present = {row[0] for row in instance}
        assert peer0_keys <= present

    def test_existential_workload_produces_nulls(self):
        from repro.datalog.ast import tuple_has_labeled_null

        gen = CDSSWorkloadGenerator(
            WorkloadConfig(
                peers=4,
                uniform_attributes=False,
                attributes_per_peer=6,
                seed=1,
            )
        )
        cdss = gen.build_cdss()
        gen.populate(cdss, base_per_peer=5)
        nulls = 0
        for layout in gen.layouts:
            for schema in layout.relation_schemas():
                for row in cdss.instance(schema.name):
                    if tuple_has_labeled_null(row):
                        nulls += 1
        assert nulls > 0
