"""Tests for the declarative spec layer and the ``repro run`` CLI."""

import json
import os

import pytest

from repro import CDSS, EditSpec, MappingSpec, PeerSpec, SpecError, SystemSpec
from repro.api.spec import RelationSpec
from repro.cli import main


def running_example(with_data: bool = True) -> CDSS:
    cdss = CDSS("bio")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    if with_data:
        with cdss.batch() as tx:
            tx.insert("G", (1, 2, 3))
            tx.insert("G", (3, 5, 2))
            tx.insert("B", (3, 5))
            tx.insert("U", (2, 5))
    return cdss


PAPER_B = frozenset({(1, 3), (3, 2), (3, 3), (3, 5)})


class TestSpecObjects:
    def test_to_spec_captures_configuration(self):
        spec = running_example(with_data=False).to_spec()
        assert [p.name for p in spec.peers] == ["PGUS", "PBioSQL", "PuBio"]
        assert [m.name for m in spec.mappings] == ["m1", "m2", "m3", "m4"]
        assert spec.edits == ()
        # The default strategy follows the REPRO_STRATEGY environment
        # override (used by CI's legacy-shim job), else "unified".
        assert spec.strategy == (os.environ.get("REPRO_STRATEGY") or "unified")

    def test_to_spec_captures_pending_edits(self):
        spec = running_example().to_spec()
        assert len(spec.edits) == 4
        assert all(e.op == "+" for e in spec.edits)

    def test_to_spec_captures_published_state_and_rejections(self):
        cdss = running_example()
        cdss.update_exchange()
        cdss.peer("PBioSQL").delete("B", (3, 2))
        cdss.update_exchange()
        spec = cdss.to_spec()
        inserts = [e for e in spec.edits if e.op == "+"]
        deletes = [e for e in spec.edits if e.op == "-"]
        assert len(inserts) == 4
        assert deletes == [EditSpec("B", (3, 2), "-")]

    def test_without_edits(self):
        spec = running_example().to_spec()
        assert spec.without_edits().edits == ()
        assert spec.without_edits().peers == spec.peers

    def test_mapping_spec_round_trips_tgds(self):
        for mapping in running_example().mappings():
            rebuilt = MappingSpec.of(mapping).to_mapping()
            assert rebuilt == mapping

    def test_bad_edit_op_rejected(self):
        with pytest.raises(SpecError):
            EditSpec("R", (1,), op="?")

    def test_bad_strategy_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(strategy="warp")

    def test_bad_encoding_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec(encoding_style="sparse")


class TestBuildAndRoundTrip:
    def test_from_spec_reproduces_instances(self):
        original = running_example()
        original.update_exchange()
        clone = CDSS.from_spec(original.to_spec())
        assert clone.pending_edits() == 4  # staged, not exchanged
        clone.update_exchange()
        assert clone.relation("B").to_rows() == PAPER_B
        assert clone.relation("B").to_rows() == original.relation("B").to_rows()

    def test_spec_build_is_from_spec(self):
        spec = running_example().to_spec()
        cdss = spec.build()
        cdss.update_exchange()
        assert cdss.relation("B").to_rows() == PAPER_B

    def test_json_round_trip(self):
        spec = running_example().to_spec()
        text = spec.to_json()
        assert SystemSpec.from_json(text) == spec
        # Row tuples survive the JSON list round-trip.
        document = json.loads(text)
        assert document["format"] == "repro/system-spec@1"
        assert SystemSpec.from_dict(document).edits == spec.edits

    def test_save_and_load(self, tmp_path):
        spec = running_example().to_spec()
        path = spec.save(tmp_path / "bio.json")
        assert SystemSpec.load(path) == spec

    def test_from_spec_accepts_dict_and_path(self, tmp_path):
        spec = running_example().to_spec()
        path = spec.save(tmp_path / "bio.json")
        for source in (spec, spec.to_dict(), str(path), path):
            cdss = CDSS.from_spec(source)
            cdss.update_exchange()
            assert cdss.relation("B").to_rows() == PAPER_B

    def test_rejections_round_trip(self):
        original = running_example()
        original.update_exchange()
        original.peer("PBioSQL").delete("B", (3, 2))
        original.update_exchange()
        clone = CDSS.from_spec(original.to_spec())
        clone.update_exchange()
        assert clone.relation("B").to_rows() == original.relation("B").to_rows()
        assert clone.system().rejections("B") == {(3, 2)}

    def test_spec_preserves_options(self):
        cdss = CDSS(
            "opts", encoding_style="per-rule", strategy="dred",
            perspective=None,
        )
        cdss.add_peer("P", {"R": ("a",)})
        spec = cdss.to_spec()
        clone = CDSS.from_spec(spec)
        assert clone.strategy == "dred"
        assert clone.to_spec() == spec

    @pytest.mark.parametrize("legacy", ["incremental", "dred"])
    def test_legacy_strategy_shims_warn_and_round_trip(self, legacy):
        """`strategy="incremental"`/`"dred"` stay accepted as deprecation
        shims: they warn, round-trip through spec JSON verbatim, and run
        on the unified weighted maintainer."""
        with pytest.warns(DeprecationWarning, match="unified"):
            cdss = CDSS("legacy", strategy=legacy)
        cdss.add_peer("P", {"R": ("a",)})
        cdss.add_peer("Q", {"S": ("a",)})
        cdss.add_mapping("m", "R(x) -> S(x)")
        with cdss.batch() as tx:
            tx.insert("R", (1,))
        with pytest.warns(DeprecationWarning, match="unified"):
            report = cdss.update_exchange()
        # The report echoes the *requested* name, not the resolved one.
        assert report.strategy == legacy
        assert cdss.relation("S").to_rows() == {(1,)}
        document = cdss.to_spec().to_json()
        assert f'"strategy": "{legacy}"' in document
        with pytest.warns(DeprecationWarning, match="unified"):
            clone = CDSS.from_spec(SystemSpec.from_json(document))
        assert clone.strategy == legacy
        clone.update_exchange()
        assert clone.relation("S").to_rows() == {(1,)}

    def test_default_strategy_does_not_warn(self, recwarn):
        cdss = CDSS("quiet")
        cdss.add_peer("P", {"R": ("a",)})
        with cdss.batch() as tx:
            tx.insert("R", (1,))
        cdss.update_exchange()
        strategy_warnings = [
            w
            for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
            and "strategy" in str(w.message)
        ]
        if not (os.environ.get("REPRO_STRATEGY") in ("incremental", "dred")):
            assert strategy_warnings == []

    def test_unknown_keys_rejected(self):
        document = running_example(with_data=False).to_spec().to_dict()
        document["shards"] = 4
        with pytest.raises(SpecError, match="shards"):
            SystemSpec.from_dict(document)

    def test_wrong_format_rejected(self):
        document = running_example(with_data=False).to_spec().to_dict()
        document["format"] = "repro/system-spec@99"
        with pytest.raises(SpecError, match="format"):
            SystemSpec.from_dict(document)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError):
            SystemSpec.from_json("not json {")
        with pytest.raises(SpecError):
            SystemSpec.from_json("[1, 2]")

    def test_missing_required_key_rejected(self):
        with pytest.raises(SpecError, match="tgd"):
            SystemSpec.from_dict(
                {"format": "repro/system-spec@1", "mappings": [{"name": "m"}]}
            )

    def test_workload_generator_specs_round_trip(self):
        from repro.workload import CDSSWorkloadGenerator, WorkloadConfig

        generator = CDSSWorkloadGenerator(
            WorkloadConfig(
                peers=3, dataset="integer", uniform_attributes=False, seed=7
            )
        )
        cdss = generator.build_cdss()
        generator.populate(cdss, base_per_peer=5)
        clone = CDSS.from_spec(
            SystemSpec.from_json(cdss.to_spec().to_json())
        )
        clone.update_exchange()
        for relation in cdss.relations():
            assert (
                clone.relation(relation).certain().to_rows()
                == cdss.relation(relation).certain().to_rows()
            )


class TestRunCommand:
    def test_run_reproduces_paper_instance_of_b(self, tmp_path, capsys):
        cdss = running_example()
        cdss.update_exchange()
        path = cdss.to_spec().save(tmp_path / "bio.json")
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "B: [(1, 3), (3, 2), (3, 3), (3, 5)]" in out
        assert "PBioSQL" in out

    def test_run_strategy_override(self, tmp_path, capsys):
        path = running_example().to_spec().save(tmp_path / "bio.json")
        assert main(["run", str(path), "--strategy", "recompute"]) == 0
        assert "recompute" in capsys.readouterr().out

    def test_run_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_malformed_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{\"format\": \"other\"}")
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestSpecDataclasses:
    def test_relation_and_peer_specs(self):
        relation = RelationSpec("R", ("a", "b"))
        peer = PeerSpec("P", (relation,))
        assert peer.to_dict() == {
            "name": "P",
            "relations": [{"name": "R", "attributes": ["a", "b"]}],
        }
        assert PeerSpec.from_dict(peer.to_dict()) == peer
        assert relation.to_schema().arity == 2

    def test_repr(self):
        assert "3 peers" in repr(running_example().to_spec())
