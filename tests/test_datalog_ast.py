"""Unit tests for the datalog AST: terms, atoms, rules, programs."""

import pytest

from repro.datalog.ast import (
    Atom,
    Constant,
    Program,
    Rule,
    SafetyError,
    SkolemFunction,
    SkolemTerm,
    SkolemValue,
    Variable,
    apply_term,
    instantiate_atom,
    is_labeled_null,
    make_atom,
    match_atom,
    tuple_has_labeled_null,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == X
        assert Variable("y") != X

    def test_skolem_function_produces_labeled_null(self):
        f = SkolemFunction("f")
        value = f(1, 2)
        assert isinstance(value, SkolemValue)
        assert value == SkolemValue("f", (1, 2))

    def test_labeled_null_equality_semantics(self):
        # Same function + same args => same null; otherwise distinct.
        assert SkolemValue("f", (1,)) == SkolemValue("f", (1,))
        assert SkolemValue("f", (1,)) != SkolemValue("f", (2,))
        assert SkolemValue("f", (1,)) != SkolemValue("g", (1,))

    def test_is_labeled_null(self):
        assert is_labeled_null(SkolemValue("f", ()))
        assert not is_labeled_null("f()")
        assert tuple_has_labeled_null((1, SkolemValue("f", ()), 2))
        assert not tuple_has_labeled_null((1, 2))

    def test_apply_term(self):
        subst = {X: 5}
        assert apply_term(Constant(3), subst) == 3
        assert apply_term(X, subst) == 5
        skolem = SkolemTerm(SkolemFunction("f"), (X, Constant("a")))
        assert apply_term(skolem, subst) == SkolemValue("f", (5, "a"))

    def test_apply_term_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            apply_term(Y, {X: 1})


class TestAtoms:
    def test_variables_in_order_with_duplicates(self):
        atom = Atom("R", (X, Constant(1), Y, X))
        assert atom.variables() == (X, Y, X)
        assert atom.variable_set() == {X, Y}

    def test_skolem_term_variables_included(self):
        atom = Atom("R", (SkolemTerm(SkolemFunction("f"), (X,)), Y))
        assert atom.variable_set() == {X, Y}

    def test_negate(self):
        atom = Atom("R", (X,))
        assert atom.negate().negated is True
        assert atom.negate().negate() == atom

    def test_instantiate(self):
        atom = Atom("R", (X, Constant("c")))
        assert instantiate_atom(atom, {X: 9}) == (9, "c")

    def test_match_atom_binds_and_checks(self):
        atom = Atom("R", (X, X, Constant(5)))
        assert match_atom(atom, (1, 1, 5), {}) == {X: 1}
        assert match_atom(atom, (1, 2, 5), {}) is None  # repeated var mismatch
        assert match_atom(atom, (1, 1, 6), {}) is None  # constant mismatch
        assert match_atom(atom, (2, 2, 5), {X: 1}) is None  # prior binding

    def test_match_atom_does_not_mutate_input(self):
        atom = Atom("R", (X,))
        subst = {}
        match_atom(atom, (1,), subst)
        assert subst == {}

    def test_make_atom_convenience(self):
        atom = make_atom("R", "x", 3, "Name")
        assert atom.terms == (X, Constant(3), Constant("Name"))


class TestRules:
    def test_safety_ok(self):
        rule = Rule(Atom("H", (X,)), (Atom("B", (X, Y)),))
        rule.check_safety()

    def test_unsafe_head_variable(self):
        rule = Rule(Atom("H", (X, Z)), (Atom("B", (X, Y)),))
        with pytest.raises(SafetyError):
            rule.check_safety()

    def test_unsafe_negated_variable(self):
        rule = Rule(
            Atom("H", (X,)),
            (Atom("B", (X,)), Atom("N", (Z,), negated=True)),
        )
        with pytest.raises(SafetyError):
            rule.check_safety()

    def test_negated_head_rejected_at_construction(self):
        with pytest.raises(SafetyError):
            Rule(Atom("H", (X,), negated=True), ())

    def test_skolem_head_variable_safety(self):
        head = Atom("H", (X, SkolemTerm(SkolemFunction("f"), (X,))))
        Rule(head, (Atom("B", (X,)),)).check_safety()
        with pytest.raises(SafetyError):
            Rule(head, (Atom("B", (Y,)),)).check_safety()

    def test_positive_negative_partition(self):
        pos = Atom("B", (X,))
        neg = Atom("N", (X,), negated=True)
        rule = Rule(Atom("H", (X,)), (pos, neg))
        assert rule.positive_body == (pos,)
        assert rule.negative_body == (neg,)

    def test_rename_apart(self):
        rule = Rule(Atom("H", (X,)), (Atom("B", (X, Y)),))
        renamed = rule.rename_apart("_1")
        assert renamed.head.terms == (Variable("x_1"),)
        assert renamed.variables() == {Variable("x_1"), Variable("y_1")}
        assert renamed.label == rule.label


class TestPrograms:
    def _program(self):
        return Program(
            (
                Rule(Atom("T", (X, Y)), (Atom("E", (X, Y)),)),
                Rule(Atom("T", (X, Z)), (Atom("T", (X, Y)), Atom("E", (Y, Z)))),
            )
        )

    def test_idb_edb_classification(self):
        prog = self._program()
        assert prog.idb_predicates() == {"T"}
        assert prog.edb_predicates() == {"E"}
        assert prog.predicates() == {"T", "E"}

    def test_rules_for(self):
        prog = self._program()
        assert len(prog.rules_for("T")) == 2
        assert prog.rules_for("E") == ()

    def test_extend(self):
        prog = self._program()
        extra = Rule(Atom("S", (X,)), (Atom("T", (X, X)),))
        assert len(prog.extend([extra])) == 3

    def test_iteration_and_len(self):
        prog = self._program()
        assert len(list(prog)) == len(prog) == 2
