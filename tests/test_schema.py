"""Unit tests for schemas, tgd mappings, weak acyclicity, internal schema."""

import pytest

from repro.datalog.ast import SkolemTerm, Variable
from repro.schema import (
    InternalSchema,
    PeerSchema,
    RelationSchema,
    SchemaError,
    SchemaMapping,
    build_dependency_graph,
    input_name,
    is_weakly_acyclic,
    local_name,
    output_name,
    rejection_name,
    require_weakly_acyclic,
    trusted_name,
    weak_acyclicity_violations,
)

G = RelationSchema("G", ("id", "can", "nam"))
B = RelationSchema("B", ("id", "nam"))
U = RelationSchema("U", ("nam", "can"))

PAPER_MAPPINGS = [
    SchemaMapping.parse("m1", "G(i, c, n) -> B(i, n)"),
    SchemaMapping.parse("m2", "G(i, c, n) -> U(n, c)"),
    SchemaMapping.parse("m3", "B(i, n) -> exists c . U(n, c)"),
    SchemaMapping.parse("m4", "B(i, c), U(n, c) -> B(i, n)"),
]


def paper_internal() -> InternalSchema:
    return InternalSchema(
        (
            PeerSchema("PGUS", (G,)),
            PeerSchema("PBioSQL", (B,)),
            PeerSchema("PuBio", (U,)),
        ),
        tuple(PAPER_MAPPINGS),
    )


class TestRelationSchema:
    def test_arity_and_positions(self):
        assert G.arity == 3
        assert G.position_of("can") == 1

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            G.position_of("nope")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))


class TestPeerSchema:
    def test_lookup(self):
        peer = PeerSchema("P", (G, B))
        assert peer.relation("G") is G
        assert "B" in peer
        assert peer.relation_names() == ("G", "B")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            PeerSchema("P", (G, G))

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            PeerSchema("P", (G,)).relation("B")


class TestSchemaMapping:
    def test_exported_variables(self):
        m3 = PAPER_MAPPINGS[2]
        assert m3.exported_variables() == (Variable("n"),)

    def test_source_target_relations(self):
        m4 = PAPER_MAPPINGS[3]
        assert m4.source_relations() == {"B", "U"}
        assert m4.target_relations() == {"B"}

    def test_validate_against_catalog(self):
        catalog = {"G": G, "B": B, "U": U}
        for mapping in PAPER_MAPPINGS:
            mapping.validate(catalog)

    def test_validate_unknown_relation(self):
        with pytest.raises(SchemaError):
            PAPER_MAPPINGS[0].validate({"B": B, "U": U})

    def test_validate_arity_mismatch(self):
        bad_g = RelationSchema("G", ("id", "nam"))
        with pytest.raises(SchemaError):
            PAPER_MAPPINGS[0].validate({"G": bad_g, "B": B})

    def test_empty_rhs_rejected(self):
        with pytest.raises(SchemaError):
            SchemaMapping("m", (PAPER_MAPPINGS[0].lhs[0],), (), frozenset())

    def test_to_rules_skolemizes_existentials(self):
        m3 = PAPER_MAPPINGS[2]
        (rule,) = m3.to_rules()
        term = rule.head.terms[1]
        assert isinstance(term, SkolemTerm)
        assert term.function.name == "f_m3_c"
        assert term.args == (Variable("n"),)
        assert rule.label == "m3"

    def test_to_rules_separate_skolem_per_variable(self):
        mapping = SchemaMapping.parse("m", "R(a) -> exists u, v . S(a, u, v)")
        (rule,) = mapping.to_rules()
        f_u, f_v = rule.head.terms[1], rule.head.terms[2]
        assert isinstance(f_u, SkolemTerm) and isinstance(f_v, SkolemTerm)
        assert f_u.function.name != f_v.function.name

    def test_to_rules_multi_atom_rhs_one_rule_each(self):
        mapping = SchemaMapping.parse("m", "R(a, b) -> S(a, x), T(b, x)")
        rules = mapping.to_rules()
        assert len(rules) == 2
        # The shared existential x uses the SAME Skolem term in both heads.
        sk_s = rules[0].head.terms[1]
        sk_t = rules[1].head.terms[1]
        assert sk_s == sk_t

    def test_to_rules_rename(self):
        m1 = PAPER_MAPPINGS[0]
        (rule,) = m1.to_rules(
            rename=lambda rel, side: rel + ("_src" if side == "source" else "_dst")
        )
        assert rule.head.predicate == "B_dst"
        assert rule.body[0].predicate == "G_src"

    def test_parse_roundtrip_repr(self):
        m3 = PAPER_MAPPINGS[2]
        assert "exists c" in repr(m3)


class TestWeakAcyclicity:
    def test_paper_mappings_weakly_acyclic(self):
        # "Mapping (m3) in Example 2 completes a cycle, but the set of
        # mappings is weakly acyclic" (Section 3.1).
        assert is_weakly_acyclic(PAPER_MAPPINGS)

    def test_self_feeding_existential_rejected(self):
        bad = SchemaMapping.parse("m", "R(x, y) -> exists z . R(y, z)")
        assert not is_weakly_acyclic([bad])
        violations = weak_acyclicity_violations([bad])
        assert violations  # a special edge inside a cycle
        with pytest.raises(SchemaError):
            require_weakly_acyclic([bad])

    def test_two_mapping_existential_cycle_rejected(self):
        m_a = SchemaMapping.parse("ma", "R(x) -> exists z . S(x, z)")
        m_b = SchemaMapping.parse("mb", "S(x, z) -> R(z)")
        assert not is_weakly_acyclic([m_a, m_b])

    def test_full_tgd_cycle_is_fine(self):
        m_a = SchemaMapping.parse("ma", "R(x, y) -> S(y, x)")
        m_b = SchemaMapping.parse("mb", "S(x, y) -> R(y, x)")
        assert is_weakly_acyclic([m_a, m_b])

    def test_dependency_graph_edges(self):
        graph = build_dependency_graph([PAPER_MAPPINGS[2]])  # m3
        # n flows B.1 -> U.0 (regular); B.1 -*-> U.1 (special, via c).
        assert (("B", 1), ("U", 0)) in graph.regular_edges
        assert (("B", 1), ("U", 1)) in graph.special_edges

    def test_no_mappings_trivially_acyclic(self):
        assert is_weakly_acyclic([])


class TestInternalSchema:
    def test_catalog_and_owners(self):
        internal = paper_internal()
        assert internal.relation_names() == ("B", "G", "U")
        assert internal.peer_of_relation("G") == "PGUS"
        assert internal.arity_of("U") == 2

    def test_overlapping_peer_schemas_rejected(self):
        with pytest.raises(SchemaError):
            InternalSchema(
                (PeerSchema("P1", (G,)), PeerSchema("P2", (G,))),
                (),
            )

    def test_duplicate_mapping_names_rejected(self):
        with pytest.raises(SchemaError):
            InternalSchema(
                (
                    PeerSchema("PGUS", (G,)),
                    PeerSchema("PBioSQL", (B,)),
                ),
                (PAPER_MAPPINGS[0], PAPER_MAPPINGS[0]),
            )

    def test_non_weakly_acyclic_rejected(self):
        bad = SchemaMapping.parse("m", "B(x, y) -> exists z . B(y, z)")
        with pytest.raises(SchemaError):
            InternalSchema((PeerSchema("PBioSQL", (B,)),), (bad,))

    def test_internal_names(self):
        assert local_name("B") == "B__l"
        assert rejection_name("B") == "B__r"
        assert input_name("B") == "B__i"
        assert trusted_name("B") == "B__t"
        assert output_name("B") == "B__o"

    def test_mapping_rules_renamed(self):
        internal = paper_internal()
        rules = internal.mapping_rules()
        m1_rule = next(r for r in rules if r.label == "m1")
        assert m1_rule.head.predicate == "B__i"
        assert m1_rule.body[0].predicate == "G__o"

    def test_bookkeeping_rules_shape(self):
        internal = paper_internal()
        rules = internal.bookkeeping_rules()
        # (tR) and (lR) per relation.
        assert len(rules) == 2 * 3
        tr_b = next(r for r in rules if r.label == "tR:B")
        assert tr_b.head.predicate == "B__o"
        assert tr_b.body[0].predicate == "B__t"
        assert tr_b.body[1].predicate == "B__r" and tr_b.body[1].negated

    def test_setup_database_creates_all(self):
        from repro.storage import Database

        internal = paper_internal()
        db = Database()
        internal.setup_database(db)
        for relation in ("B", "G", "U"):
            for suffix in ("__l", "__r", "__i", "__t", "__o"):
                assert relation + suffix in db

    def test_target_and_source_peers(self):
        internal = paper_internal()
        m4 = internal.mapping_by_name("m4")
        assert internal.target_peers(m4) == {"PBioSQL"}
        assert internal.source_peers(m4) == {"PBioSQL", "PuBio"}

    def test_relations_of_peer(self):
        internal = paper_internal()
        assert internal.relations_of_peer("PuBio") == ("U",)

    def test_plain_program_computes_without_provenance(self):
        from repro.datalog import SemiNaiveEngine
        from repro.storage import Database

        internal = paper_internal()
        db = Database()
        internal.setup_database(db)
        db["G__l"].insert_many([(1, 2, 3), (3, 5, 2)])
        db["B__l"].insert((3, 5))
        db["U__l"].insert((2, 5))
        SemiNaiveEngine().run(internal.plain_program(), db)
        assert db["B__o"].rows() == {(3, 5), (3, 2), (1, 3), (3, 3)}
