"""Tests for recursive datalog queries over peer instances."""

import pytest

from repro import CDSS
from repro.core.query import QueryError


def synonym_cdss() -> CDSS:
    """A taxon-synonym network: U relates names; edges imported from G."""
    cdss = CDSS("syn")
    cdss.add_peer("PGUS", {"G": ("a", "b")})
    cdss.add_peer("PuBio", {"U": ("a", "b")})
    cdss.add_mapping("m", "G(a, b) -> U(a, b)")
    for edge in [(1, 2), (2, 3), (3, 4), (10, 11)]:
        cdss.insert("G", edge)
    cdss.insert("U", (4, 5))
    cdss.update_exchange()
    return cdss


class TestQueryPrograms:
    def test_transitive_closure(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(x, y) :- Reach(x, y)
            """
        )
        assert (1, 5) in answers  # 1->2->3->4->5 across both peers' data
        assert (10, 11) in answers
        assert (1, 11) not in answers

    def test_custom_answer_predicate(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            result(x) :- Reach(1, x)
            """,
            answer="result",
        )
        assert answers == {(2,), (3,), (4,), (5,)}

    def test_negation_in_program(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Source(x) :- U(x, y)
            Target(y) :- U(x, y)
            ans(x) :- Source(x), not Target(x)
            """
        )
        assert answers == {(1,), (10,)}  # roots of the synonym chains

    def test_scratch_state_not_persisted(self):
        cdss = synonym_cdss()
        cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            ans(x, y) :- Reach(x, y)
            """
        )
        system = cdss.system()
        assert "Reach" not in system.db
        assert "ans" not in system.db
        assert system.is_consistent()

    def test_certain_vs_superset_answers(self):
        cdss = CDSS("nulls")
        cdss.add_peer("P1", {"B": ("i", "n")})
        cdss.add_peer("P2", {"U": ("n", "c")})
        cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
        cdss.insert("B", (1, 7))
        cdss.update_exchange()
        program = """
            Pair(n, c) :- U(n, c)
            ans(n, c) :- Pair(n, c)
        """
        assert cdss.query_program(program) == frozenset()
        assert len(cdss.query_program(program, certain=False)) == 1

    def test_missing_answer_predicate_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("Reach(x, y) :- U(x, y)")

    def test_redefining_peer_relation_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program(
                """
                U(x, y) :- G(x, y)
                ans(x) :- U(x, x)
                """
            )

    def test_unknown_relation_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("ans(x) :- Ghost(x)")

    def test_arity_mismatch_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("ans(x) :- U(x)")

    def test_program_over_updated_instance(self):
        cdss = synonym_cdss()
        cdss.delete("U", (2, 3))  # reject the imported link
        cdss.update_exchange()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(x, y) :- Reach(x, y)
            """
        )
        assert (1, 5) not in answers  # chain broken at the rejected edge
        assert (3, 5) in answers
