"""Tests for recursive datalog queries over peer instances."""

import pytest

from repro import CDSS
from repro.core.query import QueryError


def synonym_cdss() -> CDSS:
    """A taxon-synonym network: U relates names; edges imported from G."""
    cdss = CDSS("syn")
    cdss.add_peer("PGUS", {"G": ("a", "b")})
    cdss.add_peer("PuBio", {"U": ("a", "b")})
    cdss.add_mapping("m", "G(a, b) -> U(a, b)")
    for edge in [(1, 2), (2, 3), (3, 4), (10, 11)]:
        cdss.insert("G", edge)
    cdss.insert("U", (4, 5))
    cdss.update_exchange()
    return cdss


class TestQueryPrograms:
    def test_transitive_closure(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(x, y) :- Reach(x, y)
            """
        )
        assert (1, 5) in answers  # 1->2->3->4->5 across both peers' data
        assert (10, 11) in answers
        assert (1, 11) not in answers

    def test_custom_answer_predicate(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            result(x) :- Reach(1, x)
            """,
            answer="result",
        )
        assert answers == {(2,), (3,), (4,), (5,)}

    def test_negation_in_program(self):
        cdss = synonym_cdss()
        answers = cdss.query_program(
            """
            Source(x) :- U(x, y)
            Target(y) :- U(x, y)
            ans(x) :- Source(x), not Target(x)
            """
        )
        assert answers == {(1,), (10,)}  # roots of the synonym chains

    def test_scratch_state_not_persisted(self):
        cdss = synonym_cdss()
        cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            ans(x, y) :- Reach(x, y)
            """
        )
        system = cdss.system()
        assert "Reach" not in system.db
        assert "ans" not in system.db
        assert system.is_consistent()

    def test_certain_vs_superset_answers(self):
        cdss = CDSS("nulls")
        cdss.add_peer("P1", {"B": ("i", "n")})
        cdss.add_peer("P2", {"U": ("n", "c")})
        cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
        cdss.insert("B", (1, 7))
        cdss.update_exchange()
        program = """
            Pair(n, c) :- U(n, c)
            ans(n, c) :- Pair(n, c)
        """
        assert cdss.query_program(program) == frozenset()
        assert len(cdss.query_program(program, certain=False)) == 1

    def test_missing_answer_predicate_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("Reach(x, y) :- U(x, y)")

    def test_redefining_peer_relation_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program(
                """
                U(x, y) :- G(x, y)
                ans(x) :- U(x, x)
                """
            )

    def test_unknown_relation_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("ans(x) :- Ghost(x)")

    def test_arity_mismatch_rejected(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.query_program("ans(x) :- U(x)")

    def test_program_over_updated_instance(self):
        cdss = synonym_cdss()
        cdss.delete("U", (2, 3))  # reject the imported link
        cdss.update_exchange()
        answers = cdss.query_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(x, y) :- Reach(x, y)
            """
        )
        assert (1, 5) not in answers  # chain broken at the rejected edge
        assert (3, 5) in answers


class TestPreparedPrograms:
    """Programs folded into the prepared subsystem: plan caching across
    executes, parameters, and the deprecated bypass shim."""

    REACH = """
        Reach(x, y) :- U(x, y)
        Reach(x, z) :- Reach(x, y), U(y, z)
        ans(x, y) :- Reach(x, y)
    """

    def test_repeated_execution_replans_nothing(self):
        cdss = synonym_cdss()
        prepared = cdss.prepare_program(self.REACH)
        first = prepared.execute().certain()
        assert (1, 5) in first
        hits_before = prepared.stats.plan_cache_hits
        misses_before = prepared.stats.plan_cache_misses
        for _ in range(3):
            assert prepared.execute().certain() == first
        assert prepared.stats.plan_cache_misses == misses_before
        assert prepared.stats.plan_cache_hits > hits_before

    def test_query_program_caches_prepared_programs(self):
        cdss = synonym_cdss()
        first = cdss.query_program(self.REACH)
        prepared = cdss._program_cache[(self.REACH, "ans")]
        misses_before = prepared.stats.plan_cache_misses
        assert cdss.query_program(self.REACH) == first
        assert prepared.stats.plan_cache_misses == misses_before

    def test_parameterized_program(self):
        cdss = synonym_cdss()
        prepared = cdss.prepare_program(
            """
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(y) :- Reach(s, y)
            """,
            params=("s",),
        )
        assert prepared.param_names == ("s",)
        assert prepared.execute(s=1).certain() == {(2,), (3,), (4,), (5,)}
        assert prepared.execute(s=10).certain() == {(11,)}
        # Re-binding an already seen value replans nothing further.
        misses = prepared.stats.plan_cache_misses
        assert prepared.execute(s=1).certain() == {(2,), (3,), (4,), (5,)}
        assert prepared.stats.plan_cache_misses == misses

    def test_parameter_validation(self):
        cdss = synonym_cdss()
        with pytest.raises(QueryError):
            cdss.prepare_program(self.REACH, params=("nope",))
        prepared = cdss.prepare_program(
            "ans(y) :- U(s, y)", params=("s",)
        )
        with pytest.raises(QueryError):
            prepared.execute()  # missing binding
        with pytest.raises(QueryError):
            prepared.execute(s=1, t=2)  # unexpected binding

    def test_prepared_program_sees_live_state(self):
        cdss = synonym_cdss()
        prepared = cdss.prepare_program(self.REACH)
        assert (1, 5) in prepared.execute().certain()
        cdss.peer("PuBio").delete("U", (2, 3))
        cdss.update_exchange()
        answers = prepared.execute().certain()
        assert (1, 5) not in answers
        assert (3, 5) in answers

    def test_prepared_program_rebinds_after_reconfiguration(self):
        cdss = synonym_cdss()
        prepared = cdss.prepare_program(self.REACH)
        prepared.execute()
        cdss.add_peer("P3", {"W": ("a", "b")})  # invalidates the system
        cdss.add_mapping("m2", "W(a, b) -> U(a, b)")
        cdss.peer("P3").insert("W", (5, 6))
        cdss.update_exchange()
        assert (1, 6) in prepared.execute().certain()

    def test_answer_program_shim_is_deprecated_and_agrees(self):
        from repro.core.query import answer_program

        cdss = synonym_cdss()
        system = cdss.system()
        with pytest.warns(DeprecationWarning, match="answer_program"):
            legacy = answer_program(self.REACH, system.db, system.internal)
        assert legacy == cdss.query_program(self.REACH)

    def test_unsafe_parameterized_program_rejected_at_prepare(self):
        from repro.datalog.ast import SafetyError

        cdss = synonym_cdss()
        with pytest.raises(SafetyError):
            # y is unbound even with s bound: unsafe under parameters.
            cdss.prepare_program(
                "ans(y) :- not U(s, y)", params=("s",)
            )
