"""Facade-level property tests: random CDSS lifecycles stay consistent.

These drive the public API the way a downstream user would — peers,
mappings with existentials, trust conditions, interleaved edit batches —
and check the global invariants after every exchange:

* the database equals a fresh recomputation from the edbs (Def. 3.1);
* all three maintenance strategies land on identical states;
* certain answers never contain labeled nulls;
* every output tuple is derivable per the goal-directed test, and every
  trusted non-rejected derivable tuple is present (soundness/completeness
  of the maintained state w.r.t. the stored provenance).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS
from repro.core import (
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
)
from repro.core.derivation import DerivationTest
from repro.datalog.ast import tuple_has_labeled_null


def build_cdss(strategy, trust_threshold=None):
    cdss = CDSS(strategy=strategy)
    cdss.add_peer("P1", {"A": ("k", "v")})
    cdss.add_peer("P2", {"B2": ("k", "v")})
    cdss.add_peer("P3", {"C": ("k",)})
    cdss.add_mapping("mab", "A(k, v) -> B2(k, v)")
    cdss.add_mapping("mbc", "B2(k, v) -> C(k)")
    cdss.add_mapping("mca", "C(k) -> exists v . A(k, v)")  # cycle + nulls
    if trust_threshold is not None:
        cdss.set_trust_condition(
            "P2", "mab", lambda row: row[0] < trust_threshold,
            description="threshold",
        )
    return cdss


@st.composite
def lifecycle(draw):
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        inserts = draw(
            st.sets(
                st.tuples(st.integers(0, 9), st.integers(0, 3)), max_size=5
            )
        )
        deletes = draw(st.sets(st.integers(0, 9), max_size=3))
        rejections = draw(st.sets(st.integers(0, 9), max_size=2))
        batches.append((inserts, deletes, rejections))
    threshold = draw(st.one_of(st.none(), st.integers(2, 8)))
    return batches, threshold


def apply_batch(cdss, batch):
    inserts, deletes, rejections = batch
    for key, value in inserts:
        cdss.insert("A", (key, value))
    for key in deletes:
        # Delete whatever A currently holds under this key (if anything).
        for row in [r for r in cdss.instance("A") if r[0] == key]:
            if not tuple_has_labeled_null(row):
                cdss.delete("A", row)
    for key in rejections:
        cdss.delete("C", (key,))
    cdss.update_exchange()


@settings(max_examples=25, deadline=None)
@given(data=lifecycle())
def test_property_incremental_lifecycle_consistent(data):
    batches, threshold = data
    cdss = build_cdss(STRATEGY_INCREMENTAL, threshold)
    for batch in batches:
        apply_batch(cdss, batch)
    assert cdss.system().is_consistent()


@settings(max_examples=15, deadline=None)
@given(data=lifecycle())
def test_property_strategies_agree_via_facade(data):
    batches, threshold = data
    snapshots = []
    for strategy in (
        STRATEGY_INCREMENTAL,
        STRATEGY_DRED,
        STRATEGY_RECOMPUTE,
    ):
        cdss = build_cdss(strategy, threshold)
        for batch in batches:
            apply_batch(cdss, batch)
        snapshots.append(cdss.system().db.snapshot())
    assert snapshots[0] == snapshots[1]
    assert snapshots[1] == snapshots[2]


@settings(max_examples=20, deadline=None)
@given(data=lifecycle())
def test_property_certain_answers_never_contain_nulls(data):
    batches, threshold = data
    cdss = build_cdss(STRATEGY_INCREMENTAL, threshold)
    for batch in batches:
        apply_batch(cdss, batch)
    for relation in ("A", "B2", "C"):
        for row in cdss.certain_instance(relation):
            assert not tuple_has_labeled_null(row)
    answers = cdss.query("ans(k) :- A(k, v)")
    assert all(not tuple_has_labeled_null(row) for row in answers)


@settings(max_examples=15, deadline=None)
@given(data=lifecycle())
def test_property_outputs_match_derivability(data):
    """Soundness and completeness of the maintained output tables against
    the goal-directed derivability semantics."""
    batches, threshold = data
    cdss = build_cdss(STRATEGY_INCREMENTAL, threshold)
    for batch in batches:
        apply_batch(cdss, batch)
    system = cdss.system()
    tester = DerivationTest(system.db, system.encoding, system.head_filters)
    for relation in ("A", "B2", "C"):
        rows = system.instance(relation)
        if rows:
            checks = [(relation, row) for row in rows]
            verdicts = tester.derivable(checks)
            for node, verdict in verdicts.items():
                assert verdict.output, f"{node} in output but not derivable"
        # Completeness: trusted, non-rejected input tuples are in output.
        for row in system.trusted_instance(relation):
            if row not in system.rejections(relation):
                assert row in system.instance(relation)
