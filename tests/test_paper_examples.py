"""End-to-end reproduction of the paper's running example (Examples 1-10).

Each test pins a concrete claim from the paper's text against the system's
behaviour; together they certify the semantics, not just the plumbing.
"""

import pytest

from repro import CDSS, TrustCondition
from repro.datalog.ast import SkolemValue, tuple_has_labeled_null
from repro.provenance.expression import mapping_app, product_of, sum_of, token


def paper_cdss(**kwargs) -> CDSS:
    cdss = CDSS("bioinformatics", **kwargs)
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    return cdss


def loaded_cdss(**kwargs) -> CDSS:
    cdss = paper_cdss(**kwargs)
    cdss.insert("G", (1, 2, 3))
    cdss.insert("G", (3, 5, 2))
    cdss.insert("B", (3, 5))
    cdss.insert("U", (2, 5))
    cdss.update_exchange()
    return cdss


class TestExample3UpdateTranslation:
    def test_instances_match_paper(self):
        cdss = loaded_cdss()
        assert cdss.instance("G") == {(1, 2, 3), (3, 5, 2)}
        assert cdss.instance("B") == {(3, 5), (3, 2), (1, 3), (3, 3)}
        # U contains (2,5), (3,2) plus three labeled-null rows c1, c2, c3.
        u = cdss.instance("U")
        assert {(2, 5), (3, 2)} <= u
        null_rows = {row for row in u if tuple_has_labeled_null(row)}
        assert {row[0] for row in null_rows} == {5, 2, 3}
        assert len(u) == 5

    def test_labeled_nulls_are_skolem_values(self):
        cdss = loaded_cdss()
        null_row = next(
            row for row in cdss.instance("U") if tuple_has_labeled_null(row)
        )
        assert isinstance(null_row[1], SkolemValue)
        assert null_row[1].function_name == "f_m3_c"

    def test_certain_query_join_on_nulls(self):
        # ans(x, y) :- U(x, z), U(y, z) returns {(2,2),(3,3),(5,5)}:
        # labeled nulls join on equality but are projected away.
        cdss = loaded_cdss()
        assert cdss.query("ans(x, y) :- U(x, z), U(y, z)") == {
            (2, 2), (3, 3), (5, 5),
        }

    def test_certain_query_drops_null_rows(self):
        # ans(x, y) :- U(x, y) returns {(2,5),(3,2)}.
        cdss = loaded_cdss()
        assert cdss.query("ans(x, y) :- U(x, y)") == {(2, 5), (3, 2)}

    def test_non_certain_query_keeps_nulls(self):
        cdss = loaded_cdss()
        superset = cdss.query("ans(x, y) :- U(x, y)", certain=False)
        assert len(superset) == 5

    def test_curation_deletion_cascade(self):
        """'If the edit log ∆B would have also contained the curation
        deletion (- | 3 2) then B would not only be missing (3,2), but also
        (3,3); and U would be missing (2,c2).'"""
        cdss = loaded_cdss()
        cdss.delete("B", (3, 2))
        cdss.update_exchange()
        b = cdss.instance("B")
        assert (3, 2) not in b
        assert (3, 3) not in b
        assert b == {(3, 5), (1, 3)}
        u = cdss.instance("U")
        assert (2, SkolemValue("f_m3_c", (2,))) not in u
        # U(3, c3) survives: B(1,3) still derives it via m3.
        assert (3, SkolemValue("f_m3_c", (3,))) in u

    def test_rejection_persists_across_future_exchanges(self):
        cdss = loaded_cdss()
        cdss.delete("B", (3, 2))
        cdss.update_exchange()
        # New GUS data re-derives other tuples but (3,2) stays rejected.
        cdss.insert("G", (7, 8, 9))
        cdss.update_exchange()
        assert (3, 2) not in cdss.instance("B")
        assert (7, 9) in cdss.instance("B")
        assert (3, 2) in cdss.system().rejections("B")


class TestExample6Provenance:
    def test_provenance_of_b32(self):
        """Pv(B(3,2)) = m1(p3) + m4(p1 p2) — with m2 in the mapping set,
        Pv(U(2,5)) itself becomes p2 + m2(p3), so the full expansion nests."""
        cdss = loaded_cdss()
        expr = cdss.provenance_of("B", (3, 2))
        p1 = token("B", (3, 5))
        p2 = token("U", (2, 5))
        p3 = token("G", (3, 5, 2))
        expected = sum_of(
            [
                mapping_app("m1", p3),
                mapping_app(
                    "m4",
                    product_of([p1, sum_of([p2, mapping_app("m2", p3)])]),
                ),
            ]
        )
        assert expr == expected

    def test_base_tuple_provenance_is_its_token(self):
        cdss = loaded_cdss()
        assert cdss.provenance_of("G", (3, 5, 2)) == token("G", (3, 5, 2))

    def test_local_and_derived_tuple_has_both(self):
        # U(2,5) is a local insertion AND derivable via m2 (end of
        # Example 3: "the tuple U(2,5) has two different justifications").
        cdss = loaded_cdss()
        expr = cdss.provenance_of("U", (2, 5))
        expected = sum_of(
            [
                token("U", (2, 5)),
                mapping_app("m2", token("G", (3, 5, 2))),
            ]
        )
        assert expr == expected


class TestExample7TrustEvaluation:
    def test_b32_trusted_despite_distrusted_p2(self):
        """T.T + T.T.D = T: distrusting p2 alone keeps B(3,2) trusted via
        the m1 alternative."""
        cdss = loaded_cdss()
        cdss.distrust_token("PBioSQL", "U", (2, 5))
        assert cdss.trust_of("PBioSQL", "B", (3, 2)) is True

    def test_distrusting_p2_and_m1_rejects(self):
        """'Distrusting p2 and m1 leads to rejecting B(3,2)' (Example 6).
        Note the m2 alternative for Pv(U(2,5)) must also be cut: we
        distrust the G source tuple's flow through m2 as well."""
        cdss = loaded_cdss()
        cdss.distrust_token("PBioSQL", "U", (2, 5))
        cdss.set_trust_condition(
            "PBioSQL", "m1", TrustCondition.never()
        )
        cdss.set_trust_condition(
            "PBioSQL", "m2", TrustCondition.never()
        )
        assert cdss.trust_of("PBioSQL", "B", (3, 2)) is False

    def test_distrusting_p1_and_p2_does_not_reject(self):
        """'distrusting p1 and p2 does not' reject B(3,2) (Example 6)."""
        cdss = loaded_cdss()
        cdss.distrust_token("PBioSQL", "B", (3, 5))
        cdss.distrust_token("PBioSQL", "U", (2, 5))
        assert cdss.trust_of("PBioSQL", "B", (3, 2)) is True


class TestExample4TrustFiltering:
    def test_condition_on_mapping_from_gus(self):
        """PBioSQL distrusts B(i,n) from PGUS (mapping m1) when n >= 3:
        B(1,3) is rejected, and consequently U(3,c3) is not derived from it
        — but B(3,3) requires the second condition too."""
        cdss = paper_cdss()
        cdss.set_trust_condition(
            "PBioSQL", "m1", lambda row: row[1] < 3,
            description="distrust GUS-derived B rows with n >= 3",
        )
        cdss.set_trust_condition(
            "PBioSQL", "m4", lambda row: row[1] == 2,
            description="distrust m4-derived B rows with n != 2",
        )
        cdss.insert("G", (1, 2, 3))
        cdss.insert("G", (3, 5, 2))
        cdss.insert("B", (3, 5))
        cdss.insert("U", (2, 5))
        cdss.update_exchange()
        b = cdss.instance("B")
        assert (1, 3) not in b  # rejected by the first condition
        assert (3, 3) not in b  # rejected by the second condition
        assert (3, 2) in b  # m1-derived with n=2 < 3: trusted
        u = cdss.instance("U")
        # U(3, c3) would only come from B(·,3) via m3; both are rejected.
        assert not any(
            row[0] == 3 and tuple_has_labeled_null(row) for row in u
        )

    def test_untrusted_tuples_still_visible_in_input_table(self):
        cdss = paper_cdss()
        cdss.set_trust_condition("PBioSQL", "m1", lambda row: row[1] < 3)
        cdss.insert("G", (1, 2, 3))
        cdss.update_exchange()
        system = cdss.system()
        assert (1, 3) in system.input_instance("B")
        assert (1, 3) not in system.trusted_instance("B")
        assert (1, 3) not in system.instance("B")

    def test_trust_filtering_consistent_incrementally(self):
        cdss = paper_cdss()
        cdss.set_trust_condition("PBioSQL", "m1", lambda row: row[1] < 3)
        cdss.insert("G", (1, 2, 3))
        cdss.update_exchange()
        cdss.insert("G", (5, 6, 7))  # another untrusted row (n=7 >= 3)
        cdss.insert("G", (8, 9, 1))  # trusted (n=1)
        cdss.update_exchange()
        assert (5, 7) not in cdss.instance("B")
        assert (8, 1) in cdss.instance("B")
        assert cdss.system().is_consistent()


class TestExample10DeletionPropagation:
    def test_deletion_with_alternative_derivation_survives(self):
        """Example 10's shape: deleting one support leaves the tuple alive
        when an inverse path through another mapping still derives it."""
        cdss = loaded_cdss()
        # B(3,2) has two derivations (m1 from G, m4 from B+U).  Deleting
        # U(2,5) kills the m4 path only.
        cdss.delete("U", (2, 5))
        cdss.update_exchange()
        assert (3, 2) in cdss.instance("B")
        assert cdss.system().is_consistent()

    def test_deleting_both_supports_removes(self):
        cdss = loaded_cdss()
        cdss.delete("U", (2, 5))
        cdss.delete("G", (3, 5, 2))
        cdss.update_exchange()
        assert (3, 2) not in cdss.instance("B")
        assert cdss.system().is_consistent()


class TestPeerAutonomy:
    def test_unpublished_edits_invisible(self):
        """Other peers only see data from the last update exchange
        (Section 2: 'they will not see the effects of any unpublished
        updates at P')."""
        cdss = paper_cdss()
        cdss.insert("G", (3, 5, 2))
        cdss.update_exchange(peers=["PBioSQL", "PuBio"])  # GUS not publishing
        assert cdss.instance("B") == frozenset()
        cdss.update_exchange(peers=["PGUS"])
        assert (3, 2) in cdss.instance("B")

    def test_local_insert_then_delete_nets_out(self):
        cdss = paper_cdss()
        cdss.insert("B", (9, 9))
        cdss.delete("B", (9, 9))
        cdss.update_exchange()
        assert (9, 9) not in cdss.instance("B")
        # Net effect: neither contributed nor rejected.
        assert (9, 9) not in cdss.system().local_contributions("B")
        assert (9, 9) not in cdss.system().rejections("B")

    def test_reinsert_unrejects(self):
        cdss = loaded_cdss()
        cdss.delete("B", (3, 2))
        cdss.update_exchange()
        assert (3, 2) not in cdss.instance("B")
        cdss.insert("B", (3, 2))
        cdss.update_exchange()
        assert (3, 2) in cdss.instance("B")
        assert (3, 2) not in cdss.system().rejections("B")
        assert cdss.system().is_consistent()
