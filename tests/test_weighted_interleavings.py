"""Property tests for the unified weighted Z-set maintenance core.

Random *interleavings* of inserts, local deletions, trust revocations,
and un-revocations — with update exchanges scattered anywhere in the
sequence — must leave the system byte-identical to a full recomputation
from the edbs: same certain answers, same provenance tables, same
``R__o`` output instances.  This is the central contract of the PR that
unified insertion and deletion maintenance on signed deltas: whatever
order edits arrive in, the maintained fixpoint is *the* fixpoint.

The grid covers workers ∈ {1, 2} (sequential vs. shard-parallel
evaluation), both index-maintenance policies (eager / deferred), and the
legacy strategy shims ("incremental" / "dred"), which must route through
the very same weighted pass as the "unified" default.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS


def build_cdss(strategy, index_policy, workers, trust_threshold=None):
    with warnings.catch_warnings():
        # Legacy strategy names warn by design; that is not under test here.
        warnings.simplefilter("ignore", DeprecationWarning)
        cdss = CDSS(
            "zset", strategy=strategy, index_policy=index_policy, workers=workers
        )
    cdss.add_peer("P1", {"A": ("k", "v")})
    cdss.add_peer("P2", {"B2": ("k", "v")})
    cdss.add_peer("P3", {"C": ("k",)})
    cdss.add_mapping("mab", "A(k, v) -> B2(k, v)")
    cdss.add_mapping("mbc", "B2(k, v) -> C(k)")
    cdss.add_mapping("mca", "C(k) -> exists v . A(k, v)")  # cycle + nulls
    if trust_threshold is not None:
        cdss.peer("P2").trust().condition(
            "mab", lambda row: row[0] < trust_threshold,
            description="threshold",
        )
    return cdss


@st.composite
def interleavings(draw):
    """A flat op sequence: edits and exchanges freely interleaved."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"), st.integers(0, 7), st.integers(0, 3)
                ),
                st.tuples(st.just("delete"), st.integers(0, 7)),
                st.tuples(st.just("revoke"), st.integers(0, 7)),
                st.tuples(st.just("unrevoke"), st.integers(0, 7)),
                st.tuples(st.just("exchange")),
            ),
            min_size=1,
            max_size=14,
        )
    )
    threshold = draw(st.one_of(st.none(), st.integers(2, 6)))
    return ops, threshold


def apply_ops(cdss, ops):
    from repro.datalog.ast import tuple_has_labeled_null

    for op in ops:
        kind = op[0]
        if kind == "insert":
            with cdss.batch() as tx:
                tx.insert("A", (op[1], op[2]))
        elif kind == "delete":
            rows = [
                row
                for row in cdss.relation("A")
                if row[0] == op[1] and not tuple_has_labeled_null(row)
            ]
            if rows:
                with cdss.batch() as tx:
                    for row in rows:
                        tx.delete("A", row)
        elif kind == "revoke":
            # Deleting a non-local (derived) row is a trust revocation:
            # publish turns it into a rejection insert.
            with cdss.batch() as tx:
                tx.delete("C", (op[1],))
        elif kind == "unrevoke":
            with cdss.batch() as tx:
                tx.insert("C", (op[1],))
        else:
            cdss.update_exchange()
    cdss.update_exchange()


def state_fingerprint(system) -> str:
    """Certain answers + provenance tables + ``R__o`` as one byte string."""
    relations = tuple(system.internal.relation_names())
    certain = {
        relation: sorted(system.certain_instance(relation), key=repr)
        for relation in relations
    }
    outputs = {
        relation: sorted(system.instance(relation), key=repr)
        for relation in relations
    }
    provenance = {
        name: sorted(system.db[name].rows(), key=repr)
        for name in system.encoding.provenance_relation_names()
    }
    return repr((certain, outputs, provenance))


def check_matches_recompute(strategy, index_policy, workers, data):
    ops, threshold = data
    cdss = build_cdss(strategy, index_policy, workers, threshold)
    try:
        apply_ops(cdss, ops)
        system = cdss.system()
        maintained = state_fingerprint(system)
        system.recompute()
        assert state_fingerprint(system) == maintained
    finally:
        cdss.system().close()


@pytest.mark.parametrize("index_policy", ["eager", "deferred"])
@pytest.mark.parametrize("strategy", ["unified", "incremental", "dred"])
@settings(max_examples=10, deadline=None)
@given(data=interleavings())
def test_interleavings_match_recompute(strategy, index_policy, data):
    check_matches_recompute(strategy, index_policy, 1, data)


@pytest.mark.parametrize("index_policy", ["eager", "deferred"])
@settings(max_examples=5, deadline=None)
@given(data=interleavings())
def test_interleavings_match_recompute_parallel(index_policy, data):
    check_matches_recompute("unified", index_policy, 2, data)
