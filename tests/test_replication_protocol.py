"""Replication protocol v2: complement shipping, coalescing, fallback.

The property at stake is the same one `tests/test_parallel.py` pins for
the pool as a whole — parallel evaluation must be **byte-identical** to
sequential — extended to the wire protocol: whatever mix of full
shipping (protocol v1, the `REPRO_REPLICATION=full` kill switch, or a
worker advertising an older protocol) and complement shipping (the
negotiated v2 default) moves the deltas, every replica and therefore
every query result must come out the same.  On top sit unit tests for
the protocol's parts: journal coalescing, origin tags, the per-worker
stream splitter, and the transport counters the benchmark series reads.
"""

from __future__ import annotations

import contextlib
import pickle
import warnings

import pytest
from _pytest.monkeypatch import MonkeyPatch
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CDSS
from repro.datalog.engine import SemiNaiveEngine
from repro.datalog.parser import parse_program
from repro.parallel import PROTOCOL_VERSION, WorkerPool
from repro.storage.database import Database
from repro.storage.replication import (
    OP_SELF_DELETE,
    OP_SELF_INSERT,
    OPS_PACKED,
    pack_ops,
    split_op_streams,
    unpack_ops,
)

TC_PROGRAM = """
T(x, y) :- E(x, y)
T(x, z) :- E(x, y), T(y, z)
"""


def make_db(relations):
    db = Database()
    for name, (arity, rows) in relations.items():
        db.create(name, arity, rows)
    return db


# ---------------------------------------------------------------------------
# ChangeFeed: origin tags and journal coalescing
# ---------------------------------------------------------------------------


class TestFeedTagsAndCoalescing:
    def test_consecutive_same_kind_ops_coalesce(self):
        db = make_db({"E": (1, [])})
        feed = db.changefeed()
        for i in range(5):
            db["E"].insert((i,))
        assert len(feed) == 1
        ops = feed.drain()
        assert ops == [("E", "+", tuple((i,) for i in range(5)))]
        feed.close()

    def test_kind_and_relation_changes_break_coalescing(self):
        db = make_db({"E": (1, []), "F": (1, [])})
        feed = db.changefeed()
        db["E"].insert((1,))
        db["F"].insert((2,))
        db["E"].insert((3,))
        db["E"].delete((1,))
        ops = feed.drain()
        assert [op[:2] for op in ops] == [
            ("E", "+"),
            ("F", "+"),
            ("E", "+"),
            ("E", "-"),
        ]
        feed.close()

    def test_origin_tag_recorded_and_stripped(self):
        db = make_db({"E": (1, [])})
        feed = db.changefeed()
        db["E"].insert((1,))
        with db.tag_changes((7, 0b10)):
            db["E"].insert((2,))
        db["E"].insert((3,))
        tagged = feed.drain_tagged()
        assert [entry[3] for entry in tagged] == [None, (7, 0b10), None]
        # Different origins must not coalesce even for same relation/kind.
        assert len(tagged) == 3
        db["E"].insert((4,))
        assert feed.drain() == [("E", "+", ((4,),))]  # plain drain: no tag
        feed.close()

    def test_tag_scopes_nest_and_restore(self):
        db = make_db({"E": (1, [])})
        feed = db.changefeed()
        with db.tag_changes("outer"):
            db["E"].insert((1,))
            with db.tag_changes("inner"):
                db["E"].insert((2,))
            db["E"].insert((3,))
        db["E"].insert((4,))
        assert [e[3] for e in feed.drain_tagged()] == [
            "outer",
            "inner",
            "outer",
            None,
        ]
        feed.close()


# ---------------------------------------------------------------------------
# Stream splitting (the parent-side half of protocol v2)
# ---------------------------------------------------------------------------


class TestSplitOpStreams:
    def test_untagged_entries_share_one_stream_object(self):
        entries = [("E", "+", ((1,),), None), ("F", "-", ((2,),), None)]
        streams, counters = split_op_streams(entries, 3, {})
        assert streams[0] is streams[1] is streams[2]
        assert streams[0] == [("E", "+", ((1,),)), ("F", "-", ((2,),))]
        assert counters["rows_shipped"] == 6  # 2 rows x 3 workers
        assert counters["markers"] == 0

    def test_tagged_entry_becomes_marker_for_producer(self):
        entries = [
            ("T", "+", ((1, 2), (2, 3)), (5, 0b01)),  # produced by worker 0
            ("U", "+", ((9,),), None),
        ]
        rejections = {(5, "T", 0): ((4, 4),)}
        streams, counters = split_op_streams(entries, 2, rejections)
        assert streams[0] == [
            ("T", OP_SELF_INSERT, (5, ((4, 4),))),
            ("U", "+", ((9,),)),
        ]
        assert streams[1] == [
            ("T", "+", ((1, 2), (2, 3))),
            ("U", "+", ((9,),)),
        ]
        assert counters["rows_retained"] == 2
        assert counters["rows_rejected"] == 1
        # worker 1 gets T's 2 rows + both workers get U's row.
        assert counters["rows_shipped"] == 4
        assert counters["markers"] == 1

    def test_repeat_entries_for_same_round_emit_one_marker(self):
        entries = [
            ("T", "+", ((1,),), (5, 0b01)),
            ("T", "+", ((2,),), (5, 0b11)),  # both workers produced row 2
            ("T", "-", ((3,),), (6, 0b01)),  # different round + kind
        ]
        streams, _ = split_op_streams(entries, 2, {})
        kinds0 = [(name, op) for name, op, _ in streams[0]]
        assert kinds0 == [("T", OP_SELF_INSERT), ("T", OP_SELF_DELETE)]
        kinds1 = [(name, op) for name, op, _ in streams[1]]
        assert kinds1 == [("T", "+"), ("T", OP_SELF_INSERT), ("T", "-")]

    def test_pack_ops_round_trips_and_shrinks_large_streams(self):
        small = [("E", "+", ((1,),))]
        assert pack_ops(small) is small  # below the deflate threshold
        big = [("E", "+", tuple((i, i + 1) for i in range(500)))]
        packed = pack_ops(big)
        assert packed[0] == OPS_PACKED
        assert len(packed[1]) < len(pickle.dumps(big))
        assert unpack_ops(packed) == big
        assert unpack_ops(small) is small

    def test_markers_preserve_journal_order_around_untagged_ops(self):
        entries = [
            ("T", "+", ((1,),), (5, 0b01)),
            ("E", "+", ((8,),), None),  # user edit after the round
            ("T", "-", ((1,),), (6, 0b10)),
        ]
        streams, _ = split_op_streams(entries, 2, {})
        assert [op for _, op, _ in streams[0]] == [OP_SELF_INSERT, "+", "-"]
        assert [op for _, op, _ in streams[1]] == ["+", "+", OP_SELF_DELETE]


# ---------------------------------------------------------------------------
# Pool-level protocol negotiation and fallback
# ---------------------------------------------------------------------------


class TestProtocolNegotiation:
    def test_pool_negotiates_current_protocol(self):
        pool = WorkerPool(2)
        try:
            assert pool.ping() == [0, 0]
            assert pool.protocol == PROTOCOL_VERSION
        finally:
            pool.close()

    def test_replication_env_forces_full_shipping(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "full")
        pool = WorkerPool(2)
        try:
            pool.start()
            assert pool.protocol == 1
        finally:
            pool.close()

    def test_old_worker_protocol_degrades_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_PROTOCOL", "1")
        pool = WorkerPool(2)
        try:
            pool.start()
            assert pool.protocol == 1
        finally:
            pool.close()

    def test_unknown_replication_mode_rejected(self, monkeypatch):
        from repro.parallel import WorkerPoolError

        monkeypatch.setenv("REPRO_REPLICATION", "zstd")
        pool = WorkerPool(2)
        with pytest.raises(WorkerPoolError):
            pool.start()
        pool.close()


# ---------------------------------------------------------------------------
# Engine-level agreement: complement vs. full shipping vs. sequential
# ---------------------------------------------------------------------------


def run_tc_engine(workers, edges, increments):
    db = make_db({"E": (2, edges)})
    engine = SemiNaiveEngine(workers=workers)
    program = parse_program(TC_PROGRAM)
    engine.run(program, db)
    for edge in increments:
        db["E"].insert(edge)
        engine.run_insertions(program, db, {"E": {edge}})
    rows = db["T"].rows()
    stats = engine.parallel_stats()
    engine.close()
    return rows, stats


class TestEngineAgreement:
    EDGES = [(i, i + 1) for i in range(30)] + [(7, 2), (20, 5)]
    INCREMENTS = [(30, 31), (31, 3)]

    def test_complement_shipping_matches_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        sequential, _ = run_tc_engine(1, self.EDGES, self.INCREMENTS)
        parallel, stats = run_tc_engine(2, self.EDGES, self.INCREMENTS)
        assert parallel == sequential
        assert stats is not None
        assert stats["protocol"] == PROTOCOL_VERSION
        repl = stats["replication"]
        assert repl["complement_syncs"] > 0
        assert repl["rows_retained"] > 0

    def test_full_shipping_matches_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "full")
        sequential, _ = run_tc_engine(1, self.EDGES, self.INCREMENTS)
        parallel, stats = run_tc_engine(2, self.EDGES, self.INCREMENTS)
        assert parallel == sequential
        repl = stats["replication"]
        assert repl["rows_retained"] == 0
        assert repl["complement_syncs"] == 0

    def test_complement_ships_fewer_apply_bytes_than_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATION", "full")
        _, full_stats = run_tc_engine(2, self.EDGES, self.INCREMENTS)
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        _, comp_stats = run_tc_engine(2, self.EDGES, self.INCREMENTS)
        full_bytes = full_stats["transport"]["apply"]["bytes_out"]
        comp_bytes = comp_stats["transport"]["apply"]["bytes_out"]
        assert comp_bytes < full_bytes
        assert (
            comp_stats["replication"]["rows_shipped"]
            < full_stats["replication"]["rows_shipped"]
        )


# ---------------------------------------------------------------------------
# CDSS-level property: byte-identical results across shipping modes
# ---------------------------------------------------------------------------


def build_cdss(strategy, workers, chain, close_cycle):
    """A chain confederation ``P0 -> ... -> Pn-1``, optionally closed
    into a cycle with an existential (labeled-null) mapping."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        cdss = CDSS(strategy=strategy, workers=workers)
        for i in range(chain):
            cdss.add_peer(f"P{i}", {f"R{i}": ("k", "v")})
        for i in range(chain - 1):
            cdss.add_mapping(f"m{i}", f"R{i}(k, v) -> R{i + 1}(k, v)")
        if close_cycle:
            cdss.add_mapping(
                "mz", f"R{chain - 1}(k, v) -> exists w . R0(k, w)"
            )
    return cdss


@st.composite
def lifecycle(draw):
    """A random topology plus a short edit lifecycle over it: chain
    length, whether the chain closes into a null-generating cycle, and
    insert/delete batches per relation."""
    chain = draw(st.integers(min_value=2, max_value=4))
    close_cycle = draw(st.booleans())
    keys = st.integers(min_value=0, max_value=6)
    values = st.integers(min_value=0, max_value=3)
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        inserts = {}
        for i in range(chain):
            rows = draw(
                st.sets(st.tuples(keys, values), min_size=0, max_size=4)
            )
            if rows:
                inserts[i] = rows
        steps.append((inserts, draw(st.booleans())))
    return chain, close_cycle, steps


def run_lifecycle(strategy, workers, scenario):
    chain, close_cycle, steps = scenario
    cdss = build_cdss(strategy, workers, chain, close_cycle)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for inserts, delete_first in steps:
            with cdss.batch() as batch:
                for index, rows in inserts.items():
                    for row in rows:
                        batch.insert(f"R{index}", row)
            cdss.update_exchange()
            if delete_first:
                existing = sorted(cdss.system().local_contributions("R0"))
                if existing:
                    with cdss.batch() as batch:
                        batch.delete("R0", existing[0])
                    cdss.update_exchange()
        snapshot = cdss.system().db.snapshot()
        cdss.system().close()
    return snapshot


class TestShippingModeAgreement:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=lifecycle())
    def test_unified_full_vs_complement_vs_sequential(self, steps):
        with monkeypatch_ctx() as mp:
            mp.delenv("REPRO_REPLICATION", raising=False)
            complement = run_lifecycle("unified", 2, steps)
            sequential = run_lifecycle("unified", 1, steps)
            mp.setenv("REPRO_REPLICATION", "full")
            full = run_lifecycle("unified", 2, steps)
        assert complement == sequential
        assert full == sequential

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=lifecycle())
    def test_dred_shim_full_vs_complement(self, steps):
        with monkeypatch_ctx() as mp:
            mp.delenv("REPRO_REPLICATION", raising=False)
            complement = run_lifecycle("dred", 2, steps)
            mp.setenv("REPRO_REPLICATION", "full")
            full = run_lifecycle("dred", 2, steps)
        assert complement == full

    def test_protocol_fallback_worker_agrees(self, monkeypatch):
        scenario = (
            3,
            True,
            [
                ({0: {(1, 1), (2, 2)}, 1: {(3, 3)}, 2: {(4, 4)}}, True),
                ({0: {(5, 1)}, 2: {(1, 1)}}, False),
            ],
        )
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        baseline = run_lifecycle("unified", 1, scenario)
        monkeypatch.setenv("REPRO_WORKER_PROTOCOL", "1")
        degraded = run_lifecycle("unified", 2, scenario)
        assert degraded == baseline


@contextlib.contextmanager
def monkeypatch_ctx():
    """A context-managed monkeypatch usable inside @given bodies.

    pytest's function-scoped ``monkeypatch`` fixture does not reset
    between hypothesis examples; this hands out a fresh patcher per
    ``with`` block instead.
    """
    mp = MonkeyPatch()
    try:
        yield mp
    finally:
        mp.undo()


# ---------------------------------------------------------------------------
# Serve-tier surfacing
# ---------------------------------------------------------------------------


class TestStatsSurfacing:
    def test_exchange_system_exposes_parallel_stats(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATION", raising=False)
        cdss = build_cdss("unified", 2, 3, True)
        system = cdss.system()
        assert system.parallel_stats() is None  # pool not spawned yet
        with cdss.batch() as batch:
            for i in range(40):
                batch.insert("R0", (i, i))
        cdss.update_exchange()
        stats = system.parallel_stats()
        assert stats is not None
        assert stats["workers"] == 2
        assert stats["protocol"] == PROTOCOL_VERSION
        assert "apply" in stats["transport"] or stats["transport"] == {}
        assert stats["transport"]["total"]["bytes_out"] > 0
        cdss.system().close()
