"""Tests for the first-class query subsystem (prepared / parameterized /
plan-cached queries, structured-predicate pushdown, answer modes)."""

import threading
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS, CountingSemiring, Query, col, param
from repro.core.query import QueryError, answer_query
from repro.datalog.ast import SkolemValue
from repro.provenance.annotated import ExpressionSemiring
from repro.provenance.expression import ZERO


def paper_cdss() -> CDSS:
    cdss = CDSS("q")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()
    return cdss


class TestPreparedText:
    def test_prepare_execute_matches_one_shot(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(x, y) :- U(x, z), U(y, z)")
        assert prepared.execute().to_rows() == cdss.query(
            "ans(x, y) :- U(x, z), U(y, z)"
        )

    def test_parameter_binding(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        assert prepared.execute(n=5).to_rows() == {(3,)}
        assert prepared.execute(n=3).to_rows() == {(1,), (3,)}
        assert prepared.execute(n=2).to_rows() == {(3,)}
        assert prepared.execute(n="nope").to_rows() == frozenset()

    def test_parameter_names_property(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        assert prepared.param_names == ("n",)

    def test_parameter_mismatch_rejected(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        with pytest.raises(QueryError):
            prepared.execute()
        with pytest.raises(QueryError):
            prepared.execute(n=1, extra=2)
        with pytest.raises(QueryError):
            cdss.prepare("ans(i) :- B(i, n)").execute(n=1)

    def test_unknown_parameter_rejected(self):
        cdss = paper_cdss()
        with pytest.raises(QueryError):
            cdss.prepare("ans(i) :- B(i, n)", params=("zz",))

    def test_unknown_relation_and_arity_rejected(self):
        cdss = paper_cdss()
        with pytest.raises(QueryError):
            cdss.prepare("ans(x) :- Nope(x)")
        with pytest.raises(QueryError):
            cdss.prepare("ans(x) :- B(x)")

    def test_negation_still_works(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n), not U(n, n)")
        assert prepared.execute().to_rows() == cdss.query(
            "ans(i, n) :- B(i, n), not U(n, n)"
        )

    def test_explain_mentions_parameters(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        text = prepared.explain()
        assert "parameters (bound at execute): n" in text
        assert "index probe" in text


class TestPlanCacheIntegration:
    def test_zero_replanning_across_bindings(self):
        """The acceptance criterion: re-executing with new bindings is all
        plan-cache hits — no planner invocations, no cache misses."""
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        engine = cdss.system().engine
        planner = engine.planner
        built = planner.plans_built
        hits = engine.stats.plan_cache_hits
        misses = engine.stats.plan_cache_misses
        for value in (5, 3, 2, "x", 5):
            prepared.execute(n=value).to_rows()
        assert planner.plans_built == built
        assert engine.stats.plan_cache_misses == misses
        assert engine.stats.plan_cache_hits == hits + 5

    def test_prepare_is_the_single_miss(self):
        cdss = paper_cdss()
        engine = cdss.system().engine
        misses = engine.stats.plan_cache_misses
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        assert engine.stats.plan_cache_misses == misses + 1
        prepared.execute(n=5).to_rows()
        assert engine.stats.plan_cache_misses == misses + 1

    def test_prepared_query_survives_reconfiguration(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        assert prepared.execute(n=5).to_rows() == {(3,)}
        # Reconfigure: the exchange system is rebuilt lazily; the prepared
        # query must re-bind transparently on the next execute.
        cdss.add_peer("P4", {"W": ("a",)})
        cdss.update_exchange()
        assert prepared.execute(n=5).to_rows() == {(3,)}

    def test_data_changes_visible_without_replanning(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        assert prepared.execute(n=9).to_rows() == frozenset()
        cdss.peer("PBioSQL").insert("B", (7, 9))
        cdss.update_exchange()
        planner = cdss.system().engine.planner
        built = planner.plans_built
        assert prepared.execute(n=9).to_rows() == {(7,)}
        assert planner.plans_built == built


class TestBuilder:
    def test_single_scan_equals_text(self):
        cdss = paper_cdss()
        text = cdss.query("ans(i, n) :- B(i, n)")
        built = cdss.prepare(Query.scan("B")).execute().to_rows()
        assert built == text

    def test_select_constant_pushdown(self):
        cdss = paper_cdss()
        query = cdss.relation("B").select(col("id") == 3)
        rows = cdss.prepare(query).execute().to_rows()
        assert rows == {r for r in cdss.query("ans(i, n) :- B(i, n)") if r[0] == 3}

    def test_join_and_project(self):
        cdss = paper_cdss()
        query = (
            cdss.relation("B")
            .join("U", on=(("nam", "can"),))
            .project("id", "U.nam")
        )
        built = cdss.prepare(query).execute().to_rows()
        assert built == cdss.query("ans(i, n) :- B(i, c), U(n, c)")

    def test_self_join_with_alias(self):
        cdss = paper_cdss()
        query = (
            Query.scan("U")
            .join("U", on="can", alias="U2")
            .project("U.nam", "U2.nam")
        )
        built = cdss.prepare(query).execute().to_rows()
        assert built == cdss.query("ans(x, y) :- U(x, z), U(y, z)")

    def test_builder_parameter(self):
        cdss = paper_cdss()
        query = cdss.relation("B").select(col("nam") == param("n")).project("id")
        prepared = cdss.prepare(query)
        assert prepared.execute(n=5).to_rows() == {(3,)}
        assert prepared.execute(n=3).to_rows() == {(1,), (3,)}
        assert prepared.execute(n=2).to_rows() == {(3,)}

    def test_residual_comparison(self):
        cdss = paper_cdss()
        query = cdss.relation("B").select(col("id") > 1)
        rows = cdss.prepare(query).execute().to_rows()
        assert rows == {r for r in cdss.query("ans(i, n) :- B(i, n)") if r[0] > 1}

    def test_column_vs_column(self):
        cdss = paper_cdss()
        query = cdss.relation("B").select(col("id") == col("nam"))
        rows = cdss.prepare(query).execute().to_rows()
        assert rows == {(3, 3)}

    def test_unsatisfiable_constants(self):
        cdss = paper_cdss()
        query = cdss.relation("B").select(col("id") == 1, col("id") == 2)
        assert cdss.prepare(query).execute().to_rows() == frozenset()

    def test_unknown_and_ambiguous_columns(self):
        cdss = paper_cdss()
        with pytest.raises(QueryError):
            cdss.prepare(Query.scan("B").select(col("zz") == 1))
        joined = Query.scan("B").join("U", on=(("nam", "can"),))
        with pytest.raises(QueryError):
            cdss.prepare(joined.select(col("nam") == 1))  # B.nam or U.nam?
        assert cdss.prepare(joined.select(col("U.nam") == 2)) is not None

    def test_select_before_join_resolves_pre_join_columns(self):
        """A bare column that was unambiguous at select() time must not
        become ambiguous when a later join introduces the same attribute."""
        cdss = paper_cdss()
        query = (
            Query.scan("B")
            .select(col("nam") == 5)  # only B in scope here
            .join("U", on=(("nam", "can"),))
            .project("id", "U.nam")
        )
        built = cdss.prepare(query).execute().to_rows()
        assert built == cdss.query("ans(i, n) :- B(i, 5), U(n, 5)")

    def test_builder_ops_rejected_on_text_queries(self):
        query = Query.parse("ans(x) :- U(x, y)")
        with pytest.raises(QueryError):
            query.select(col("nam") == 1)
        with pytest.raises(QueryError):
            query.project("nam")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            Query.scan("U").join("U", on="can")


class TestAnswerModes:
    def test_certain_default_drops_nulls(self):
        cdss = paper_cdss()
        answers = cdss.prepare("ans(n, c) :- U(n, c)").execute()
        rows = answers.to_rows()
        assert rows and not any(
            isinstance(v, SkolemValue) for row in rows for v in row
        )

    def test_with_nulls_superset(self):
        cdss = paper_cdss()
        answers = cdss.prepare("ans(n, c) :- U(n, c)").execute()
        certain = answers.to_rows()
        superset = answers.with_nulls().to_rows()
        assert certain < superset
        assert any(
            isinstance(v, SkolemValue) for row in superset for v in row
        )
        # with_nulls equals the deprecated certain=False behaviour.
        assert superset == cdss.query("ans(n, c) :- U(n, c)", certain=False)

    def test_answer_set_is_live(self):
        cdss = paper_cdss()
        answers = cdss.prepare("ans(i) :- B(i, n)", params=("n",)).execute(n=9)
        assert answers.to_rows() == frozenset()
        cdss.peer("PBioSQL").insert("B", (7, 9))
        cdss.update_exchange()
        assert answers.to_rows() == {(7,)}

    def test_answer_set_live_across_reconfiguration(self):
        """An AnswerSet obtained before a system rebuild must follow the
        prepared query onto the new system, not the detached old one."""
        cdss = paper_cdss()
        answers = cdss.prepare("ans(i) :- B(i, n)", params=("n",)).execute(n=9)
        cdss.add_peer("P4", {"W": ("a",)})  # rebuilds the exchange system
        cdss.peer("PBioSQL").insert("B", (7, 9))
        cdss.update_exchange()
        assert answers.to_rows() == {(7,)}

    def test_answer_set_protocols(self):
        cdss = paper_cdss()
        answers = cdss.prepare("ans(i, n) :- B(i, n)").execute()
        assert len(answers) == len(answers.to_rows())
        assert (3, 5) in answers
        assert bool(answers)

    def test_annotated_matches_stored_provenance(self):
        cdss = paper_cdss()
        annotated = cdss.prepare("ans(i, n) :- B(i, n)").execute().annotated()
        graph = cdss.provenance_graph()
        assert annotated  # non-empty
        for row, expression in annotated.items():
            assert expression == graph.expression_for("B", row)
            assert expression != ZERO

    def test_annotated_join_is_product_and_sum(self):
        cdss = paper_cdss()
        annotated = (
            cdss.prepare("ans(i) :- B(i, c), U(n, c)").execute().annotated()
        )
        graph = cdss.provenance_graph()
        semiring = ExpressionSemiring()
        expected: dict = {}
        for i, c in cdss.query("ans(i, c) :- B(i, c)"):
            for n, c2 in cdss.query("ans(n, c) :- U(n, c)", certain=False):
                if c2 != c:
                    continue
                product = semiring.times(
                    graph.expression_for("B", (i, c)),
                    graph.expression_for("U", (n, c2)),
                )
                expected[(i,)] = semiring.plus(
                    expected.get((i,), semiring.zero), product
                )
        # Compare on the certain rows the annotated mode reports.
        for row, expression in annotated.items():
            assert expression == expected[row]

    def test_annotated_in_counting_semiring(self):
        cdss = paper_cdss()
        annotated = (
            cdss.prepare("ans(i, n) :- B(i, n)")
            .execute()
            .annotated(semiring=CountingSemiring())
        )
        counts = cdss.evaluate_provenance(CountingSemiring())
        for row, value in annotated.items():
            assert value == counts[("B", row)]

    def test_annotated_requires_cdss_binding(self):
        cdss = paper_cdss()
        system = cdss.system()
        from repro.api.query import prepare

        prepared = prepare("ans(i) :- B(i, n)", system.db, system.internal)
        with pytest.raises(QueryError):
            prepared.execute().annotated()


class TestWherePushdown:
    def test_structured_where_no_warning(self):
        cdss = paper_cdss()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rows = cdss.relation("B").where(col("id") == 3).to_rows()
        assert rows == {(3, 2), (3, 3), (3, 5)}

    def test_callable_where_warns_and_agrees(self):
        cdss = paper_cdss()
        with pytest.warns(DeprecationWarning):
            legacy = cdss.relation("B").where(lambda r: r[0] == 3).to_rows()
        assert legacy == cdss.relation("B").where(col("id") == 3).to_rows()

    def test_answer_query_shim_warns_and_agrees(self):
        cdss = paper_cdss()
        system = cdss.system()
        with pytest.warns(DeprecationWarning):
            shim = answer_query(
                "ans(x, y) :- U(x, z), U(y, z)", system.db, system.internal
            )
        assert shim == cdss.query("ans(x, y) :- U(x, z), U(y, z)")
        with pytest.warns(DeprecationWarning):
            superset = answer_query(
                "ans(n, c) :- U(n, c)", system.db, system.internal,
                certain=False,
            )
        assert superset == cdss.query("ans(n, c) :- U(n, c)", certain=False)

    def test_where_chaining_and_residuals(self):
        cdss = paper_cdss()
        view = cdss.relation("B").where(col("id") == 3).where(col("nam") > 2)
        assert view.to_rows() == {(3, 3), (3, 5)}
        assert (3, 5) in view
        assert (3, 2) not in view
        assert (1, 3) not in view
        assert len(view) == 2

    def test_where_certain_composition(self):
        cdss = paper_cdss()
        certain = cdss.relation("U").where(col("nam") == 2).certain()
        assert certain.to_rows() == {(2, 5)}

    def test_param_in_view_predicate_rejected(self):
        cdss = paper_cdss()
        view = cdss.relation("B").where(col("id") == param("i"))
        with pytest.raises(QueryError):
            view.to_rows()

    def test_view_filtered_by_callable_cannot_become_query(self):
        cdss = paper_cdss()
        with pytest.warns(DeprecationWarning):
            view = cdss.relation("B").where(lambda r: True)
        with pytest.raises(QueryError):
            view.select(col("id") == 3)

    def test_repr_qualifiers(self):
        cdss = paper_cdss()
        assert "filtered" in repr(cdss.relation("B").where(col("id") == 3))


@st.composite
def random_instance(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=0,
            max_size=12,
        )
    )
    key = draw(st.integers(min_value=0, max_value=5))
    return rows, key


class TestPushdownEquivalenceProperty:
    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_pushdown_equals_naive_filter(self, case):
        rows, key = case
        cdss = CDSS("prop")
        cdss.add_peer("P1", {"R": ("a", "b")})
        cdss.add_peer("P2", {"S": ("a", "b")})
        cdss.add_mapping("m", "R(x, y) -> S(x, y)")
        with cdss.batch() as tx:
            for row in rows:
                tx.insert("R", row)
        cdss.update_exchange()
        naive = frozenset(
            row for row in cdss.relation("S").to_rows() if row[0] == key
        )
        pushdown = cdss.relation("S").where(col("a") == key).to_rows()
        assert pushdown == naive
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            slow = (
                cdss.relation("S").where(lambda r: r[0] == key).to_rows()
            )
        assert slow == naive
        # The prepared Query route agrees too.
        prepared = cdss.prepare(
            cdss.relation("S").select(col("a") == param("k"))
        )
        assert prepared.execute(k=key).to_rows() == naive


class TestReviewRegressions:
    def test_residual_recompiled_after_replan(self):
        """A cost-based planner may flip the join order after data
        changes; residual closures must be rebuilt against the new plan's
        slots, not silently read the old ones."""
        from repro.datalog.planner import CostBasedPlanner

        cdss = CDSS("cost", planner=CostBasedPlanner())
        cdss.add_peer("P1", {"R": ("a", "b")})
        cdss.add_peer("P2", {"T": ("b", "c")})
        cdss.add_mapping("m", "R(x, y) -> R(x, y)")  # keep schemas exchanged
        with cdss.batch() as tx:
            tx.insert("R", (1, 0))
            tx.insert("R", (2, 1))
            for i in range(6):
                tx.insert("T", (i % 2, i + 10))
        cdss.update_exchange()
        query = (
            Query.scan("R")
            .join("T", on="b")
            .select(col("c") > col("a"))
            .project("a", "c")
        )
        prepared = cdss.prepare(query)

        def naive():
            return frozenset(
                (a, c)
                for a, b in cdss.relation("R").to_rows()
                for b2, c in cdss.relation("T").to_rows()
                if b == b2 and c > a
            )

        first = prepared.execute().to_rows()
        assert first == naive() and first
        order_before = prepared.plan.order
        # Grow R well past T so the cost planner re-plans with T first,
        # changing the environment slot layout the residual reads.
        with cdss.batch() as tx:
            for i in range(60):
                tx.insert("R", (100 + i, i % 2))
        cdss.update_exchange()
        assert prepared.execute().to_rows() == naive()
        assert prepared.plan.order != order_before  # the replan really flips

    def test_query_program_does_not_leak_watchers(self):
        cdss = paper_cdss()
        program = "ans(x, y) :- U(x, z), U(y, z)"
        first = cdss.query_program(program)
        instance = cdss.system().db["U__o"]
        watchers_before = len(instance._watchers)
        for _ in range(5):
            assert cdss.query_program(program) == first
        assert len(instance._watchers) == watchers_before

    def test_one_shot_query_does_not_grow_engine_plan_cache(self):
        cdss = paper_cdss()
        engine = cdss.system().engine
        cdss.query("ans(i) :- B(i, n)")
        size = len(engine._plan_cache)
        for _ in range(5):
            cdss.query("ans(i) :- B(i, n)")
        assert len(engine._plan_cache) == size

    def test_boolean_and_misuse_raises(self):
        compound = (col("a") == 1) & (col("b") == 2)
        with pytest.raises(QueryError):
            bool(compound)
        with pytest.raises(QueryError):
            compound and (col("c") == 3)
        with pytest.raises(QueryError):
            bool(col("a") == 1)


class TestDatabaseVersionDirtyBit:
    def test_version_monotone_on_instance_mutation(self):
        from repro.storage.database import Database

        db = Database()
        instance = db.create("R", 2)
        v0 = db.version
        instance.insert((1, 2))
        assert db.version > v0
        v1 = db.version
        instance.insert((1, 2))  # no-op insert: no bump required
        assert db.version == v1
        instance.delete((1, 2))
        assert db.version > v1

    def test_attached_instance_bumps_both_catalogs(self):
        from repro.storage.database import Database
        from repro.storage.instance import Instance

        shared = Instance("R", 1)
        db1, db2 = Database(), Database()
        db1.attach(shared)
        db2.attach(shared)
        v1, v2 = db1.version, db2.version
        shared.insert((1,))
        assert db1.version > v1 and db2.version > v2

    def test_drop_stops_watching_and_stays_monotone(self):
        from repro.storage.database import Database

        db = Database()
        instance = db.create("R", 1)
        instance.insert((1,))
        v = db.version
        assert db.drop("R")
        assert db.version > v
        v = db.version
        instance.insert((2,))  # dropped: no longer bumps this catalog
        assert db.version == v


class TestDRedPlanReuse:
    def test_dred_reuses_engine_plans(self):
        """Repeated DRed deletions must not rebuild plans per call."""
        cdss = paper_cdss()
        cdss.strategy = "dred"
        peer = cdss.peer("PGUS")
        planner = cdss.system().engine.planner
        peer.delete("G", (1, 2, 3))
        cdss.update_exchange()
        built = planner.plans_built
        peer.delete("G", (3, 5, 2))
        cdss.update_exchange()
        # Second deletion exchange: every plan comes from a cache.
        assert planner.plans_built == built

    def test_dred_still_agrees_with_recompute(self):
        results = []
        for strategy in ("dred", "recompute"):
            cdss = paper_cdss()
            cdss.strategy = strategy
            cdss.peer("PBioSQL").delete("B", (3, 2))
            cdss.update_exchange()
            results.append(
                {r: cdss.relation(r).to_rows() for r in ("G", "B", "U")}
            )
        assert results[0] == results[1]


class TestCLIQuery:
    def test_query_command(self, tmp_path, capsys):
        from repro.cli import main

        cdss = paper_cdss()
        spec = tmp_path / "spec.json"
        cdss.to_spec().save(spec)
        assert main(["query", str(spec), "ans(x, y) :- U(x, z), U(y, z)"]) == 0
        out = capsys.readouterr().out
        assert "(2, 2)" in out

    def test_query_command_with_param(self, tmp_path, capsys):
        from repro.cli import main

        cdss = paper_cdss()
        spec = tmp_path / "spec.json"
        cdss.to_spec().save(spec)
        assert (
            main(
                [
                    "query",
                    str(spec),
                    "ans(i) :- B(i, n)",
                    "--param",
                    "n=5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(3,)" in out

    def test_query_command_annotated(self, tmp_path, capsys):
        from repro.cli import main

        cdss = paper_cdss()
        spec = tmp_path / "spec.json"
        cdss.to_spec().save(spec)
        assert (
            main(
                [
                    "query",
                    str(spec),
                    "ans(i, n) :- B(i, n)",
                    "--mode",
                    "annotated",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "<-" in out

    def test_query_command_reports_errors(self, tmp_path, capsys):
        from repro.cli import main

        cdss = paper_cdss()
        spec = tmp_path / "spec.json"
        cdss.to_spec().save(spec)
        assert main(["query", str(spec), "ans(x) :- Nope(x)"]) == 1
        assert "error" in capsys.readouterr().err

    def test_query_command_reports_unsafe_queries(self, tmp_path, capsys):
        """SafetyError (a DatalogError) must exit 1, not traceback."""
        from repro.cli import main

        cdss = paper_cdss()
        spec = tmp_path / "spec.json"
        cdss.to_spec().save(spec)
        unsafe = "ans(i) :- B(i, n), not U(z, z)"
        assert main(["query", str(spec), unsafe]) == 1
        assert "error" in capsys.readouterr().err


class TestResultCache:
    """PreparedQuery's (bindings, Database.version)-keyed result cache:
    repeated identical executes are O(1) serves; any mutation moves the
    version (the PR 3 dirty-bit) and invalidates for free."""

    def test_identical_executes_hit_the_cache(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        first = prepared.execute(n=2).to_rows()
        assert prepared.result_cache_misses == 1
        again = prepared.execute(n=2).to_rows()
        assert again == first
        assert prepared.result_cache_hits == 1
        # A different binding is its own entry.
        prepared.execute(n=5).to_rows()
        assert prepared.result_cache_misses == 2

    def test_cache_is_mode_keyed(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(n, c) :- U(n, c)")
        certain = prepared.execute().to_rows()
        with_nulls = prepared.execute().with_nulls().to_rows()
        assert certain < with_nulls  # m3 invents a labeled null
        assert prepared.result_cache_misses == 2
        assert prepared.execute().with_nulls().to_rows() == with_nulls
        assert prepared.result_cache_hits == 1

    def test_any_mutation_invalidates_for_free(self):
        cdss = paper_cdss()
        pgus = cdss.peer("PGUS")
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        before = prepared.execute(n=3).to_rows()
        assert prepared.execute(n=3).to_rows() == before
        assert prepared.result_cache_hits == 1
        pgus.insert("G", (7, 8, 3))
        cdss.update_exchange()
        after = prepared.execute(n=3).to_rows()
        assert (7,) in after and (7,) not in before
        # The stale entry silently missed; no explicit invalidation ran.
        assert prepared.result_cache_misses == 2

    def test_cache_survives_reconfiguration_by_identity(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        prepared.execute(n=2).to_rows()
        # Reconfiguring rebuilds the system: the old entry's database
        # identity no longer matches, so it cannot serve stale rows.
        cdss.add_peer("P4", {"W": ("w",)})
        cdss.update_exchange()
        prepared.execute(n=2).to_rows()
        assert prepared.result_cache_misses == 2

    def test_len_contains_and_iter_share_the_cache(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)")
        answers = prepared.execute()
        n = len(answers)
        assert bool(answers) == (n > 0)
        assert sorted(answers) == sorted(answers.to_rows())
        assert prepared.result_cache_misses == 1
        assert prepared.result_cache_hits >= 3


class TestOrderLimitOffset:
    """ORDER BY / LIMIT / OFFSET: stable sort on projected columns,
    applied below dedup, on both Query and AnswerSet."""

    def test_order_by_names(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        assert list(prepared.execute().order_by("i", "n")) == [
            (1, 3),
            (3, 2),
            (3, 3),
            (3, 5),
        ]

    def test_descending_and_positions(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        assert list(prepared.execute().order_by("-i", "-n")) == [
            (3, 5),
            (3, 3),
            (3, 2),
            (1, 3),
        ]
        # 0-based output positions: sort by the second, then first column.
        assert list(prepared.execute().order_by(1, 0)) == [
            (3, 2),
            (1, 3),
            (3, 3),
            (3, 5),
        ]

    def test_limit_offset_paging(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        ordered = prepared.execute().order_by("i", "n")
        assert list(ordered.limit(2)) == [(1, 3), (3, 2)]
        assert list(ordered.offset(1)) == [(3, 2), (3, 3), (3, 5)]
        assert list(ordered.offset(1).limit(1)) == [(3, 2)]
        assert list(ordered.offset(9)) == []
        assert list(ordered.limit(0)) == []

    def test_order_applies_below_dedup(self):
        cdss = paper_cdss()
        # B has rows with duplicate i=3: projection dedups first, so
        # LIMIT counts distinct answers, not derivations.
        prepared = cdss.prepare("ans(i) :- B(i, n)")
        assert list(prepared.execute().order_by("i")) == [(1,), (3,)]
        assert list(prepared.execute().order_by("-i").limit(1)) == [(3,)]

    def test_query_level_matches_answer_level(self):
        cdss = paper_cdss()
        query = Query.parse("ans(i, n) :- B(i, n)").order_by("-i", "-n")
        via_query = list(cdss.prepare(query.limit(2).offset(1)).execute())
        via_answers = list(
            cdss.prepare("ans(i, n) :- B(i, n)")
            .execute()
            .order_by("-i", "-n")
            .limit(2)
            .offset(1)
        )
        assert via_query == via_answers == [(3, 3), (3, 2)]

    def test_builder_order_uses_projection_names(self):
        cdss = paper_cdss()
        query = Query.scan("B").order_by("-id", "-nam").limit(1)
        assert list(cdss.prepare(query).execute()) == [(3, 5)]

    def test_col_reference_accepted(self):
        cdss = paper_cdss()
        query = Query.scan("B").order_by(col("nam"), col("id"))
        assert list(cdss.prepare(query).execute()) == [
            (3, 2),
            (1, 3),
            (3, 3),
            (3, 5),
        ]

    def test_mixed_type_columns_sort_deterministically(self):
        cdss = paper_cdss()
        # with_nulls answers put labeled nulls (SkolemValue) next to ints
        # in the same column; ordering falls back to a total type-aware
        # key instead of raising TypeError.
        prepared = cdss.prepare("ans(n, c) :- U(n, c)")
        first = list(prepared.execute().with_nulls().order_by("c", "n"))
        second = list(prepared.execute().with_nulls().order_by("c", "n"))
        assert first == second
        assert len(first) == len(prepared.execute().with_nulls().to_rows())

    def test_annotated_respects_order_and_limit(self):
        cdss = paper_cdss()
        annotated = (
            cdss.prepare("ans(i, n) :- B(i, n)")
            .execute()
            .order_by("-i", "-n")
            .limit(2)
            .annotated()
        )
        assert list(annotated) == [(3, 5), (3, 3)]
        assert all(expr != ZERO for expr in annotated.values())

    def test_bad_arguments_rejected(self):
        cdss = paper_cdss()
        answers = cdss.prepare("ans(i, n) :- B(i, n)").execute()
        with pytest.raises(QueryError):
            answers.order_by("zz")
        with pytest.raises(QueryError):
            answers.order_by(7)
        with pytest.raises(QueryError):
            answers.order_by(1.5)
        with pytest.raises(QueryError):
            answers.order_by()
        with pytest.raises(QueryError):
            answers.limit(-1)
        with pytest.raises(QueryError):
            answers.offset(-2)
        with pytest.raises(QueryError):
            Query.parse("ans(i) :- B(i, n)").order_by()


class TestRebindRace:
    def test_concurrent_executes_rebind_exactly_once(self, monkeypatch):
        """After a reconfiguration, racing executes re-bind exactly once
        (single check-and-swap under the rebind lock) and all threads
        observe the same fresh binding."""
        import repro.api.query as query_module

        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        prepared.execute().to_rows()

        real_binding = query_module._Binding
        constructions = []
        construction_lock = threading.Lock()

        class CountingBinding(real_binding):
            def __init__(self, *args, **kwargs):
                with construction_lock:
                    constructions.append(threading.get_ident())
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(query_module, "_Binding", CountingBinding)

        # Reconfigure: the next execute sees a rebuilt system.
        cdss.add_mapping("m5", "U(n, c) -> B(c, n)")
        cdss.update_exchange()

        workers = 8
        barrier = threading.Barrier(workers)
        bindings = []
        errors = []

        def racer():
            try:
                barrier.wait()
                bindings.append(prepared._current_binding())
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=racer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(constructions) == 1
        assert all(binding is bindings[0] for binding in bindings)
        # The rebound query answers against the *new* configuration.
        assert prepared.execute().to_rows() == cdss.query(
            "ans(i, n) :- B(i, n)"
        )
