"""Unit tests for the database catalog, statistics, and key-value store."""

import pytest

from repro.storage import (
    Database,
    KeyValueStore,
    RelationStore,
    StorageError,
    UnknownRelationError,
    compute_stats,
)


class TestDatabase:
    def test_create_and_access(self):
        db = Database()
        db.create("R", 2, [(1, 2)])
        assert (1, 2) in db["R"]
        assert "R" in db

    def test_create_duplicate_raises(self):
        db = Database()
        db.create("R", 1)
        with pytest.raises(StorageError):
            db.create("R", 1)

    def test_ensure_creates_or_checks_arity(self):
        db = Database()
        db.ensure("R", 2)
        db.ensure("R", 2)
        with pytest.raises(StorageError):
            db.ensure("R", 3)

    def test_unknown_relation_raises(self):
        db = Database()
        with pytest.raises(UnknownRelationError):
            db["missing"]

    def test_drop(self):
        db = Database()
        db.create("R", 1)
        assert db.drop("R") is True
        assert db.drop("R") is False

    def test_total_rows(self):
        db = Database()
        db.create("R", 1, [(1,), (2,)])
        db.create("S", 1, [(3,)])
        assert db.total_rows() == 3

    def test_snapshot_restore_roundtrip(self):
        db = Database()
        db.create("R", 1, [(1,)])
        snap = db.snapshot()
        db.insert("R", (2,))
        db.create("S", 1, [(9,)])
        db.restore(snap)
        assert db["R"].rows() == {(1,)}
        assert db["S"].rows() == frozenset()  # absent from snapshot: emptied

    def test_copy_is_deep(self):
        db = Database()
        db.create("R", 1, [(1,)])
        clone = db.copy()
        clone.insert("R", (2,))
        assert (2,) not in db["R"]

    def test_relation_names_sorted(self):
        db = Database()
        db.create("B", 1)
        db.create("A", 1)
        assert db.relation_names() == ("A", "B")


class TestStats:
    def test_compute_stats_cardinality_and_ndv(self):
        db = Database()
        db.create("R", 2, [(1, "x"), (1, "y"), (2, "x")])
        stats = db.stats_for("R")
        assert stats.cardinality == 3
        assert stats.distinct == (2, 2)

    def test_fanout_estimates(self):
        db = Database()
        db.create("R", 2, [(i, i % 2) for i in range(10)])
        stats = db.stats_for("R")
        assert stats.fanout((0,)) == pytest.approx(1.0)
        assert stats.fanout((1,)) == pytest.approx(5.0)
        assert stats.fanout(()) == pytest.approx(10.0)

    def test_stats_cache_tracks_versions(self):
        db = Database()
        db.create("R", 1, [(1,)])
        assert db.stats_for("R").cardinality == 1
        db.insert("R", (2,))
        assert db.stats_for("R").cardinality == 2

    def test_empty_relation_selectivity_zero(self):
        db = Database()
        db.create("R", 2)
        stats = db.stats_for("R")
        assert stats.selectivity((0,)) == 0.0

    def test_zero_arity_stats(self):
        from repro.storage.instance import Instance

        stats = compute_stats(Instance("N", 0, [()]))
        assert stats.cardinality == 1
        assert stats.distinct == ()


class TestKeyValueStore:
    def test_put_get_delete(self):
        kv = KeyValueStore()
        kv.put("b1", "k", 42)
        assert kv.get("b1", "k") == 42
        assert kv.get("b1", "nope", "dflt") == "dflt"
        assert kv.get("nobucket", "k", "dflt") == "dflt"
        assert kv.delete("b1", "k") is True
        assert kv.delete("b1", "k") is False

    def test_cursor_ordered(self):
        kv = KeyValueStore()
        for key in [3, 1, 2]:
            kv.put("b", key, key)
        assert [k for k, _ in kv.cursor("b")] == [1, 2, 3]
        assert list(kv.cursor("missing")) == []

    def test_bucket_names_and_drop(self):
        kv = KeyValueStore()
        kv.put("x", 1, 1)
        kv.put("a", 1, 1)
        assert kv.bucket_names() == ("a", "x")
        assert kv.drop("x") is True
        assert kv.bucket_names() == ("a",)


class TestRelationStore:
    def test_insert_scan_contains(self):
        rs = RelationStore()
        assert rs.insert("R", (1, "a")) is True
        assert rs.insert("R", (1, "a")) is False
        assert rs.contains("R", (1, "a"))
        assert not rs.contains("R", (2, "b"))
        assert list(rs.scan("R")) == [(1, "a")]
        assert rs.count("R") == 1

    def test_heterogeneous_rows_coexist(self):
        rs = RelationStore()
        rs.insert_many("R", [(1,), ("1",), (None,)])
        assert rs.count("R") == 3
        assert rs.contains("R", ("1",))
        assert rs.delete("R", (1,)) is True
        assert rs.count("R") == 2
