"""Unit tests for edit logs and publish semantics (Section 3.1)."""

from repro.core.editlog import EditLog, PublishDelta, Update, publish
from repro.schema import InternalSchema, PeerSchema, RelationSchema
from repro.storage import Database


def fresh_db() -> Database:
    internal = InternalSchema(
        (PeerSchema("P", (RelationSchema("R", ("a",)),)),), ()
    )
    db = Database()
    internal.setup_database(db)
    return db


class TestUpdate:
    def test_sign_and_repr(self):
        plus = Update("R", (1,), is_insert=True)
        minus = Update("R", (1,), is_insert=False)
        assert plus.sign == "+"
        assert minus.sign == "-"
        assert "R" in repr(plus)

    def test_row_normalized_to_tuple(self):
        update = Update("R", [1, 2][:1], is_insert=True)
        assert update.row == (1,)


class TestEditLog:
    def test_append_and_iterate(self):
        log = EditLog("P")
        log.insert("R", (1,))
        log.delete("R", (2,))
        assert len(log) == 2
        assert [u.sign for u in log] == ["+", "-"]

    def test_drain_consumes(self):
        log = EditLog("P")
        log.insert("R", (1,))
        entries = log.drain()
        assert len(entries) == 1
        assert len(log) == 0


class TestPublish:
    def test_simple_insert(self):
        db = fresh_db()
        log = EditLog("P")
        log.insert("R", (1,))
        delta = publish(log, db)
        assert delta.local_inserts == {"R": {(1,)}}
        assert delta.local_deletes == {}
        assert len(log) == 0  # consumed

    def test_insert_then_delete_nets_to_nothing(self):
        db = fresh_db()
        log = EditLog("P")
        log.insert("R", (1,))
        log.delete("R", (1,))
        delta = publish(log, db)
        assert delta.is_empty()

    def test_delete_of_local_contribution(self):
        db = fresh_db()
        db["R__l"].insert((1,))
        log = EditLog("P")
        log.delete("R", (1,))
        delta = publish(log, db)
        assert delta.local_deletes == {"R": {(1,)}}
        assert delta.rejection_inserts == {}

    def test_delete_of_imported_data_becomes_rejection(self):
        db = fresh_db()  # (1,) not in R__l: must have been imported
        log = EditLog("P")
        log.delete("R", (1,))
        delta = publish(log, db)
        assert delta.rejection_inserts == {"R": {(1,)}}
        assert delta.local_deletes == {}

    def test_reinsert_unrejects(self):
        db = fresh_db()
        db["R__r"].insert((1,))
        log = EditLog("P")
        log.insert("R", (1,))
        delta = publish(log, db)
        assert delta.rejection_deletes == {"R": {(1,)}}
        assert delta.local_inserts == {"R": {(1,)}}

    def test_delete_insert_delete_sequence(self):
        db = fresh_db()
        log = EditLog("P")
        log.delete("R", (1,))  # rejection
        log.insert("R", (1,))  # un-reject + local
        log.delete("R", (1,))  # delete the local contribution again
        delta = publish(log, db)
        # Final state: not local, not rejected -> empty net delta.
        assert delta.is_empty()

    def test_noop_reinsert_of_existing_local(self):
        db = fresh_db()
        db["R__l"].insert((1,))
        log = EditLog("P")
        log.insert("R", (1,))
        delta = publish(log, db)
        assert delta.is_empty()

    def test_counts(self):
        db = fresh_db()
        log = EditLog("P")
        log.insert("R", (1,))
        log.insert("R", (2,))
        log.delete("R", (9,))
        delta = publish(log, db)
        counts = delta.counts()
        assert counts["local_inserts"] == 2
        assert counts["rejection_inserts"] == 1

    def test_merge_combines_disjoint_relations(self):
        a = PublishDelta(local_inserts={"R": {(1,)}})
        b = PublishDelta(local_inserts={"S": {(2,)}})
        a.merge(b)
        assert a.local_inserts == {"R": {(1,)}, "S": {(2,)}}
