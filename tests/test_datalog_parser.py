"""Unit tests for the datalog/tgd parser."""

import pytest

from repro.datalog.ast import Constant, SkolemTerm, Variable
from repro.datalog.parser import ParseError, parse_program, parse_rule, parse_tgd


class TestParseRule:
    def test_simple_rule(self):
        rule = parse_rule("B(i, n) :- G(i, c, n)")
        assert rule.head.predicate == "B"
        assert rule.head.terms == (Variable("i"), Variable("n"))
        assert rule.body[0].predicate == "G"

    def test_fact(self):
        rule = parse_rule("R(1, 'two')")
        assert rule.body == ()
        assert rule.head.terms == (Constant(1), Constant("two"))

    def test_constants(self):
        rule = parse_rule("R(x) :- S(x, 3, -4, 2.5, 'hi', \"there\", Sym)")
        values = [t.value for t in rule.body[0].terms[1:]]
        assert values == [3, -4, 2.5, "hi", "there", "Sym"]

    def test_uppercase_identifier_is_constant(self):
        rule = parse_rule("R(x) :- S(x, GUS)")
        assert rule.body[0].terms[1] == Constant("GUS")

    def test_skolem_in_head(self):
        rule = parse_rule("U(n, f(n)) :- B(i, n)")
        term = rule.head.terms[1]
        assert isinstance(term, SkolemTerm)
        assert term.function.name == "f"
        assert term.args == (Variable("n"),)

    def test_skolem_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("R(x) :- S(f(x))")

    def test_negated_body_atom(self):
        rule = parse_rule("Ro(x) :- Rt(x), not Rr(x)")
        assert rule.body[1].negated is True

    def test_negated_head_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("not R(x) :- S(x)")

    def test_unsafe_rule_rejected(self):
        with pytest.raises(Exception):
            parse_rule("R(x, y) :- S(x)")

    def test_trailing_period_ok(self):
        rule = parse_rule("R(x) :- S(x).")
        assert rule.head.predicate == "R"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("R(x) :- S(x) S(x)")

    def test_label_attached(self):
        rule = parse_rule("R(x) :- S(x)", label="m1")
        assert rule.label == "m1"

    def test_comments_ignored(self):
        prog = parse_program(
            """
            % a comment
            R(x) :- S(x)  % trailing comment
            # another comment style
            T(x) :- R(x)
            """
        )
        assert len(prog) == 2


class TestParseProgram:
    def test_multiple_rules(self):
        prog = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        )
        assert len(prog) == 2
        assert prog.idb_predicates() == {"T"}

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_multiline_rule_with_unbalanced_first_line(self):
        prog = parse_program(
            """
            T(x, z) :- T(x, y),
            E(y, z)
            """
        )
        assert len(prog) == 1
        assert len(prog.rules[0].body) == 2


class TestParseTgd:
    def test_simple_tgd(self):
        tgd = parse_tgd("G(i, c, n) -> B(i, n)")
        assert [a.predicate for a in tgd.lhs] == ["G"]
        assert [a.predicate for a in tgd.rhs] == ["B"]
        assert tgd.existential_vars == frozenset()

    def test_explicit_existential(self):
        tgd = parse_tgd("B(i, n) -> exists c . U(n, c)")
        assert tgd.existential_vars == {Variable("c")}

    def test_implicit_existential(self):
        tgd = parse_tgd("B(i, n) -> U(n, c)")
        assert tgd.existential_vars == {Variable("c")}

    def test_multi_atom_lhs(self):
        tgd = parse_tgd("B(i, c), U(n, c) -> B(i, n)")
        assert len(tgd.lhs) == 2

    def test_and_keyword_conjunction(self):
        tgd = parse_tgd("B(i, c) AND U(n, c) -> B(i, n)")
        assert len(tgd.lhs) == 2

    def test_multi_atom_rhs(self):
        tgd = parse_tgd("R(a, b) -> S(a, x), T(b, x)")
        assert len(tgd.rhs) == 2
        assert tgd.existential_vars == {Variable("x")}

    def test_negated_lhs_atom(self):
        tgd = parse_tgd("Rt(x), not Rr(x) -> Ro(x)")
        assert tgd.lhs[1].negated is True

    def test_negated_rhs_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x) -> not S(x)")

    def test_existential_also_on_lhs_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x) -> exists x . S(x)")

    def test_multiple_existentials(self):
        tgd = parse_tgd("R(a) -> exists u, v . S(a, u, v)")
        assert tgd.existential_vars == {Variable("u"), Variable("v")}

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x) S(x)")

    def test_paper_example_mappings(self):
        # The four mappings of Example 2.
        m1 = parse_tgd("G(i, c, n) -> B(i, n)")
        m2 = parse_tgd("G(i, c, n) -> U(n, c)")
        m3 = parse_tgd("B(i, n) -> exists c . U(n, c)")
        m4 = parse_tgd("B(i, c), U(n, c) -> B(i, n)")
        assert m3.existential_vars == {Variable("c")}
        assert m4.existential_vars == frozenset()
        assert [a.predicate for a in m4.lhs] == ["B", "U"]
        assert m1.rhs[0].arity == 2 and m2.rhs[0].arity == 2
