"""Tests for exchange tracing (``repro.obs.tracing``).

Covers the enable/disable contract (no spans recorded while off), the
parent/child interval-nesting property over a *real* publish through the
exchange system, the JSONL sink, and in-memory retention.
"""

import json

import pytest

from repro import CDSS
from repro.obs import tracing


@pytest.fixture(autouse=True)
def tracing_isolation():
    """Every test starts and ends with tracing off and no retained traces."""
    tracing.disable()
    tracing.clear()
    yield
    tracing.disable()
    tracing.clear()


def paper_cdss() -> CDSS:
    cdss = CDSS("traced")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    return cdss


class TestEnableDisable:
    def test_disabled_publish_records_nothing(self):
        cdss = paper_cdss()
        cdss.update_exchange()
        assert tracing.recent_traces() == []

    def test_enable_flag_round_trip(self):
        assert not tracing.enabled()
        tracing.enable()
        assert tracing.enabled() and tracing.ENABLED
        tracing.disable()
        assert not tracing.enabled()

    def test_span_contextmanager_is_noop_when_disabled(self):
        with tracing.span("anything") as span:
            assert span is None
        assert tracing.recent_traces() == []


class TestPublishTrace:
    def _publish_trace(self) -> list:
        cdss = paper_cdss()
        tracing.enable()
        report = cdss.update_exchange()
        assert report.inserted > 0
        traces = tracing.recent_traces()
        assert traces, "a publish must complete at least one trace"
        return traces[-1]

    def test_parent_child_interval_nesting(self):
        trace = self._publish_trace()
        by_id = {span["span_id"]: span for span in trace}
        roots = [span for span in trace if span["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "exchange"
        trace_ids = {span["trace_id"] for span in trace}
        assert len(trace_ids) == 1
        for span in trace:
            assert span["end_wall"] >= span["start_wall"]
            parent_id = span["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            # The property under test: every child interval nests
            # strictly inside its parent's interval.
            assert parent["start_wall"] <= span["start_wall"]
            assert span["end_wall"] <= parent["end_wall"]

    def test_span_taxonomy_and_rows(self):
        trace = self._publish_trace()
        names = {span["name"] for span in trace}
        assert {"exchange", "stratum", "round", "rule-evaluation"} <= names
        root = next(s for s in trace if s["parent_id"] is None)
        assert root["rows"] > 0
        assert root["attrs"]["strategy"]
        rounds = [s for s in trace if s["name"] == "round"]
        assert all("number" in s["attrs"] for s in rounds)

    def test_exception_inside_span_still_completes_trace(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with tracing.span("root"):
                with tracing.span("child"):
                    raise RuntimeError("boom")
        traces = tracing.recent_traces()
        assert len(traces) == 1
        assert [s["name"] for s in traces[0]] == ["child", "root"]


class TestSinkAndRetention:
    def test_jsonl_sink(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        cdss = paper_cdss()
        tracing.enable(str(sink))
        cdss.update_exchange()
        tracing.disable()  # closes (and flushes) the sink
        lines = sink.read_text().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        names = {span["name"] for span in spans}
        assert "exchange" in names
        for span in spans:
            assert span["wall_seconds"] >= 0
            assert "span_id" in span and "trace_id" in span

    def test_retention_maxlen(self):
        tracing.enable(retain=2)
        for index in range(5):
            with tracing.span("root", index=index):
                pass
        traces = tracing.recent_traces()
        assert len(traces) == 2
        # Oldest first: the retained traces are the last two completed.
        assert [t[0]["attrs"]["index"] for t in traces] == [3, 4]
