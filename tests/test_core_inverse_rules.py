"""Tests for the literal Section 4.1.3 inverse-rule datalog program,
cross-checked against the direct DerivationTest implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derivation import DerivationTest
from repro.core.exchange import ExchangeSystem
from repro.core.inverse_rules import (
    build_inverse_program,
    derivable_by_inverse_rules,
)
from repro.datalog.ast import SkolemValue
from repro.provenance import TrustCondition, TrustPolicy
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping


def chain_system(policies=None, mappings=None):
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
            PeerSchema("P3", (RelationSchema("T", ("a",)),)),
        ),
        mappings
        or (
            SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
            SchemaMapping.parse("m_st", "S(x) -> T(x)"),
        ),
    )
    return ExchangeSystem(internal, policies=policies)


class TestProgramConstruction:
    def test_program_shapes(self):
        system = chain_system()
        program = build_inverse_program(system.encoding)
        # Slice: per (table, head) one inverse rule + per source atom one
        # push-down rule.
        assert len(program.slice_program) == 2 + 2
        # Validation: per table one prov rule + per head one trust rule,
        # plus per relation (local, lR, tR).
        assert len(program.validation_program) == 2 + 2 + 3 * 3

    def test_programs_are_safe_and_stratifiable(self):
        from repro.datalog import stratify

        system = chain_system()
        program = build_inverse_program(system.encoding)
        program.slice_program.check_safety()
        program.validation_program.check_safety()
        stratify(program.slice_program)
        stratify(program.validation_program)


class TestAgainstDirectImplementation:
    def test_simple_chain(self):
        system = chain_system()
        system.db["R__l"].insert_many([(1,), (2,)])
        system.recompute()
        checks = [("T", (1,)), ("T", (9,)), ("R", (2,)), ("S", (1,))]
        by_program = derivable_by_inverse_rules(
            system.db, system.encoding, checks
        )
        tester = DerivationTest(system.db, system.encoding)
        by_direct = {
            node: verdict.output
            for node, verdict in tester.derivable(checks).items()
        }
        assert by_program == by_direct
        assert by_program[("T", (1,))] is True
        assert by_program[("T", (9,))] is False

    def test_cyclic_support_not_validated(self):
        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a",)),)),
                PeerSchema("P2", (RelationSchema("S", ("a",)),)),
            ),
            (
                SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
                SchemaMapping.parse("m_sr", "S(x) -> R(x)"),
            ),
        )
        system = ExchangeSystem(internal)
        system.db["R__l"].insert((1,))
        system.recompute()
        # Remove the base contribution but leave the (now circular) derived
        # state in place: the validation must NOT re-derive it.
        system.db["R__l"].delete((1,))
        verdicts = derivable_by_inverse_rules(
            system.db, system.encoding, [("R", (1,)), ("S", (1,))]
        )
        assert verdicts == {("R", (1,)): False, ("S", (1,)): False}

    def test_skolem_patterns_bind_through_labeled_nulls(self):
        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("B", ("i", "n")),)),
                PeerSchema("P2", (RelationSchema("U", ("n", "c")),)),
            ),
            (SchemaMapping.parse("m3", "B(i, n) -> exists c . U(n, c)"),),
        )
        system = ExchangeSystem(internal)
        system.db["B__l"].insert((3, 5))
        system.recompute()
        null_row = next(iter(system.instance("U")))
        assert isinstance(null_row[1], SkolemValue)
        verdicts = derivable_by_inverse_rules(
            system.db, system.encoding, [("U", null_row)]
        )
        assert verdicts[("U", null_row)] is True
        # A null from a different (fabricated) argument is not derivable.
        fake = (9, SkolemValue("f_m3_c", (9,)))
        verdicts = derivable_by_inverse_rules(
            system.db, system.encoding, [("U", fake)]
        )
        assert verdicts[("U", fake)] is False

    def test_trust_conditions_respected(self):
        policy = TrustPolicy("P2")
        policy.set_mapping_condition(
            "m_rs", TrustCondition("even", lambda row: row[0] % 2 == 0)
        )
        system = chain_system(policies={"P2": policy})
        system.db["R__l"].insert_many([(1,), (2,)])
        system.recompute()
        verdicts = derivable_by_inverse_rules(
            system.db,
            system.encoding,
            [("S", (1,)), ("S", (2,))],
            head_filters=system.head_filters,
        )
        assert verdicts[("S", (1,))] is False
        assert verdicts[("S", (2,))] is True

    def test_rejections_respected(self):
        system = chain_system()
        system.db["R__l"].insert((1,))
        system.db["S__r"].insert((1,))
        system.recompute()
        verdicts = derivable_by_inverse_rules(
            system.db, system.encoding, [("S", (1,)), ("T", (1,))]
        )
        # S(1) is rejected from its output; T(1) only derives through it.
        assert verdicts[("S", (1,))] is False
        assert verdicts[("T", (1,))] is False

    def test_scratch_relations_cleaned_up(self):
        system = chain_system()
        system.db["R__l"].insert((1,))
        system.recompute()
        before = set(system.db.relation_names())
        derivable_by_inverse_rules(system.db, system.encoding, [("T", (1,))])
        assert set(system.db.relation_names()) == before


@settings(max_examples=25, deadline=None)
@given(
    base=st.sets(st.integers(0, 8), min_size=1, max_size=6),
    removed=st.sets(st.integers(0, 8), max_size=4),
    rejected=st.sets(st.integers(0, 8), max_size=3),
    checks=st.sets(st.integers(0, 8), min_size=1, max_size=5),
)
def test_property_inverse_program_matches_direct(
    base, removed, rejected, checks
):
    """Property: the literal 4.1.3 program and the direct implementation
    agree on output-derivability for random cyclic-mapping states."""
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
        ),
        (
            SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
            SchemaMapping.parse("m_sr", "S(x) -> R(x)"),
        ),
    )
    system = ExchangeSystem(internal)
    system.db["R__l"].insert_many([(x,) for x in base])
    system.recompute()
    # Perturb the edbs WITHOUT repairing derived state: derivability
    # questions are asked against the stored provenance.
    for x in removed:
        system.db["R__l"].delete((x,))
    for x in rejected:
        system.db["S__r"].insert((x,))
    nodes = [("R", (x,)) for x in checks] + [("S", (x,)) for x in checks]
    by_program = derivable_by_inverse_rules(
        system.db, system.encoding, nodes
    )
    tester = DerivationTest(system.db, system.encoding)
    by_direct = {
        node: verdict.output for node, verdict in tester.derivable(nodes).items()
    }
    assert by_program == by_direct
