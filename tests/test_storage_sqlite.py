"""Tests for the SQLite storage backend and the durable value codec.

The contract under test is *parity*: the in-memory B+-tree store and the
sqlite3 store implement the same bucket protocol, so any operation
sequence must leave both with identical contents (cursor *order* may
differ — it is only promised to be deterministic per backend).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import SkolemValue
from repro.storage import (
    KeyValueStore,
    SQLiteStore,
    StorageBackend,
    StorageError,
    open_backend,
)
from repro.storage.codec import (
    CodecError,
    decode_value,
    dumps_row,
    encode_value,
    key_text,
    loads_row,
)


# -- codec -----------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -7,
            3.5,
            "",
            "text",
            SkolemValue("f_m3_c", (5,)),
            SkolemValue("f_m1_x", ("a", None)),
            SkolemValue("f_m1_x", (SkolemValue("f_m2_y", (1,)), 2)),
            (1, "a"),
            (1, (2, SkolemValue("f", ()))),
        ],
    )
    def test_value_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, list)

    def test_bool_int_distinction_survives(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_row_roundtrip_is_canonical(self):
        row = (1, SkolemValue("f_m3_c", (5,)), "x")
        text = dumps_row(row)
        assert loads_row(text) == row
        assert dumps_row(loads_row(text)) == text

    def test_equal_rows_equal_bytes(self):
        a = (SkolemValue("f", (1, "a")), 2)
        b = (SkolemValue("f", (1, "a")), 2)
        assert dumps_row(a) == dumps_row(b)

    def test_unencodable_value_raises(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_undecodable_document_raises(self):
        with pytest.raises(CodecError):
            decode_value({"$null": [1, []], "extra": 2})
        with pytest.raises(CodecError):
            decode_value({"$mystery": []})
        with pytest.raises(CodecError):
            decode_value([1, 2])

    def test_key_text_distinguishes_types(self):
        assert key_text(("int:1",)) != key_text(("str:'1'",))
        assert key_text(1) != key_text("1")


# -- backend construction --------------------------------------------------


class TestOpenBackend:
    def test_memory(self):
        store = open_backend("memory")
        assert isinstance(store, KeyValueStore)
        assert isinstance(store, StorageBackend)

    def test_sqlite(self, tmp_path):
        store = open_backend("sqlite", str(tmp_path / "s.db"))
        assert isinstance(store, SQLiteStore)
        assert isinstance(store, StorageBackend)
        store.close()

    def test_unknown_kind_raises(self):
        with pytest.raises(StorageError):
            open_backend("papyrus")


# -- sqlite specifics ------------------------------------------------------


class TestSQLiteStore:
    def test_basic_ops(self):
        store = SQLiteStore()
        store.put("b", "k", (1, "x"))
        assert store.get("b", "k") == (1, "x")
        assert store.get("b", "missing", 42) == 42
        assert store.size("b") == 1
        assert store.delete("b", "k")
        assert not store.delete("b", "k")
        assert store.size("b") == 0

    def test_bucket_names_may_contain_separators(self):
        store = SQLiteStore()
        store.put("rel::R__l", ("k",), (1,))
        store.put("__catalog__", "R__l", 2)
        assert store.bucket_names() == ("__catalog__", "rel::R__l")
        assert store.drop("rel::R__l")
        assert store.bucket_names() == ("__catalog__",)

    def test_labeled_nulls_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "state.sqlite3")
        null = SkolemValue("f_m3_c", (5, SkolemValue("g", ("x",))))
        store = SQLiteStore(path)
        store.put("rows", ("key",), (5, null))
        store.close()
        reopened = SQLiteStore(path)
        value = reopened.get("rows", ("key",))
        assert value == (5, null)
        assert isinstance(value[1], SkolemValue)
        reopened.close()

    def test_cursor_is_sorted_and_bounded(self):
        store = SQLiteStore()
        for key in ("b", "a", "c"):
            store.put("x", key, key.upper())
        assert [k for k, _ in store.cursor("x")] == ["a", "b", "c"]
        assert [v for _, v in store.cursor("x", low="b")] == ["B", "C"]
        assert [v for _, v in store.cursor("x", high="b")] == ["A", "B"]
        assert list(store.cursor("missing")) == []

    def test_transaction_rolls_back_on_error(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = SQLiteStore(path)
        store.put("b", "committed", 1)
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.put("b", "doomed", 2)
                store.put("new_bucket", "k", 3)
                raise RuntimeError("abort")
        assert store.get("b", "committed") == 1
        assert store.get("b", "doomed") is None
        # The rolled-back bucket is gone from the catalog cache too.
        assert "new_bucket" not in store.bucket_names()
        store.put("new_bucket", "k", 4)  # and is recreatable
        assert store.get("new_bucket", "k") == 4
        store.close()

    def test_nested_transactions_join(self):
        store = SQLiteStore()
        with store.transaction():
            store.put("b", "outer", 1)
            with store.transaction():
                store.put("b", "inner", 2)
        assert store.get("b", "outer") == 1
        assert store.get("b", "inner") == 2

    def test_synchronous_validation(self, tmp_path):
        with pytest.raises(StorageError):
            SQLiteStore(str(tmp_path / "x.db"), synchronous="sometimes")

    def test_close_is_idempotent(self):
        store = SQLiteStore()
        store.close()
        store.close()


# -- cross-backend parity (property) ---------------------------------------

_keys = st.tuples(st.sampled_from(["int:1", "int:2", "str:'a'", "str:'b'"]))
_rows = st.tuples(
    st.integers(-3, 3),
    st.one_of(
        st.text(max_size=2),
        st.booleans(),
        st.none(),
        st.builds(
            SkolemValue,
            st.sampled_from(["f_m1_c", "f_m3_x"]),
            st.tuples(st.integers(0, 3)),
        ),
    ),
)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(["b1", "b2"]), _keys, _rows),
        st.tuples(st.just("delete"), st.sampled_from(["b1", "b2"]), _keys),
        st.tuples(st.just("drop"), st.sampled_from(["b1", "b2"])),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_property_backend_parity(ops):
    """Any op sequence leaves both backends with identical contents."""
    memory = KeyValueStore()
    sqlite = SQLiteStore()
    for op in ops:
        if op[0] == "put":
            _, bucket, key, row = op
            memory.put(bucket, key, row)
            sqlite.put(bucket, key, row)
        elif op[0] == "delete":
            _, bucket, key = op
            assert memory.delete(bucket, key) == sqlite.delete(bucket, key)
        else:
            _, bucket = op
            assert memory.drop(bucket) == sqlite.drop(bucket)
    assert memory.bucket_names() == sqlite.bucket_names()
    for bucket in memory.bucket_names():
        assert memory.size(bucket) == sqlite.size(bucket)
        assert dict(memory.cursor(bucket)) == dict(sqlite.cursor(bucket))
        # values() is cursor order minus the keys, on both backends.
        for store in (memory, sqlite):
            values = [value for _, value in store.cursor(bucket)]
            assert list(store.values(bucket)) == values
    sqlite.close()
