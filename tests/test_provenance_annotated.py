"""Tests for direct semiring-annotated evaluation, cross-checked against the
relational encoding + provenance graph route."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange import ExchangeSystem
from repro.datalog.parser import parse_rule
from repro.provenance import (
    BooleanSemiring,
    CountingSemiring,
    TropicalSemiring,
    WhySemiring,
    build_provenance_graph,
)
from repro.provenance.annotated import (
    AnnotatedDatabase,
    annotate_mappings,
    annotated_fixpoint,
)
from repro.provenance.expression import ProvenanceError
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping

PAPER_MAPPINGS = (
    SchemaMapping.parse("m1", "G(i, c, n) -> B(i, n)"),
    SchemaMapping.parse("m2", "G(i, c, n) -> U(n, c)"),
    SchemaMapping.parse("m3", "B(i, n) -> exists c . U(n, c)"),
    SchemaMapping.parse("m4", "B(i, c), U(n, c) -> B(i, n)"),
)

PAPER_BASE = {
    "G": {(1, 2, 3): 1, (3, 5, 2): 1},
    "B": {(3, 5): 1},
    "U": {(2, 5): 1},
}


def counted(base, semiring=None):
    semiring = semiring or CountingSemiring()
    typed = {
        rel: {row: semiring.one for row in rows} for rel, rows in base.items()
    }
    return typed


class TestAnnotatedDatabase:
    def test_annotate_accumulates(self):
        db = AnnotatedDatabase(CountingSemiring())
        db.annotate("R", (1,), 2)
        db.annotate("R", (1,), 3)
        assert db.annotation("R", (1,)) == 5

    def test_support_excludes_zero(self):
        db = AnnotatedDatabase(CountingSemiring())
        db.set_annotation("R", (1,), 0)
        db.set_annotation("R", (2,), 1)
        assert db.support("R") == ((2,),)

    def test_missing_rows_are_zero(self):
        db = AnnotatedDatabase(BooleanSemiring())
        assert db.annotation("R", (9,)) is False


class TestAnnotatedFixpoint:
    def test_counting_matches_paper_example(self):
        result = annotate_mappings(
            PAPER_MAPPINGS,
            {
                rel: {row: 1 for row in rows}
                for rel, rows in PAPER_BASE.items()
            },
            CountingSemiring(),
        )
        # B(3,2): via m1 from G, and via m4 from B(3,5) x U(2,5) where
        # U(2,5) itself has 2 derivations (base + m2) => 1 + 1*2 = 3.
        assert result.annotation("B", (3, 2)) == 3

    def test_boolean_matches_instance_membership(self):
        result = annotate_mappings(
            PAPER_MAPPINGS,
            {
                rel: {row: True for row in rows}
                for rel, rows in PAPER_BASE.items()
            },
            BooleanSemiring(),
        )
        assert result.annotation("B", (3, 2)) is True
        assert result.annotation("B", (1, 3)) is True
        assert result.annotation("B", (9, 9)) is False

    def test_tropical_with_mapping_costs(self):
        from repro.provenance import WeightedTropicalSemiring

        semiring = WeightedTropicalSemiring({"m1": 10.0, "m4": 1.0})
        result = annotate_mappings(
            PAPER_MAPPINGS,
            {
                rel: {row: 0.0 for row in rows}
                for rel, rows in PAPER_BASE.items()
            },
            semiring,
        )
        # m4 path costs 1 (its sources are free); m1 path costs 10.
        assert result.annotation("B", (3, 2)) == 1.0

    def test_negated_rules_rejected(self):
        rule = parse_rule("H(x) :- E(x), not F(x)")
        with pytest.raises(ProvenanceError):
            annotated_fixpoint(
                [rule], {"E": {(1,): True}}, BooleanSemiring()
            )

    def test_cyclic_boolean_converges(self):
        rules = (
            parse_rule("S(x) :- R(x)", label="m_rs"),
            parse_rule("R(x) :- S(x)", label="m_sr"),
        )
        result = annotated_fixpoint(
            rules, {"R": {(1,): True}}, BooleanSemiring()
        )
        assert result.annotation("S", (1,)) is True

    def test_cyclic_counting_saturates(self):
        rules = (
            parse_rule("S(x) :- R(x)", label="m_rs"),
            parse_rule("R(x) :- S(x)", label="m_sr"),
        )
        semiring = CountingSemiring(saturation=32)
        result = annotated_fixpoint(
            rules, {"R": {(1,): 1}}, semiring
        )
        assert result.annotation("R", (1,)) == 32

    def test_skolem_heads_produce_nulls(self):
        result = annotate_mappings(
            (PAPER_MAPPINGS[2],),  # m3 only
            {"B": {(3, 5): 1}},
            CountingSemiring(),
        )
        rows = result.support("U")
        assert len(rows) == 1
        from repro.datalog.ast import SkolemValue

        assert isinstance(rows[0][1], SkolemValue)


class TestCrossCheckAgainstGraph:
    """The two routes to annotations must agree: direct K-relation
    evaluation vs. relational encoding -> provenance graph -> equations."""

    def _graph_values(self, semiring, token_value=None):
        internal = InternalSchema(
            (
                PeerSchema("PGUS", (RelationSchema("G", ("i", "c", "n")),)),
                PeerSchema("PBioSQL", (RelationSchema("B", ("i", "n")),)),
                PeerSchema("PuBio", (RelationSchema("U", ("n", "c")),)),
            ),
            PAPER_MAPPINGS,
        )
        system = ExchangeSystem(internal)
        for relation, rows in PAPER_BASE.items():
            system.db[f"{relation}__l"].insert_many(rows)
        system.recompute()
        graph = build_provenance_graph(system.db, system.encoding)
        return graph.evaluate(semiring, token_value)

    @pytest.mark.parametrize(
        "semiring,one",
        [
            (CountingSemiring(), 1),
            (BooleanSemiring(), True),
            (TropicalSemiring(), 0.0),
        ],
    )
    def test_paper_example_agreement(self, semiring, one):
        direct = annotate_mappings(
            PAPER_MAPPINGS,
            {
                rel: {row: one for row in rows}
                for rel, rows in PAPER_BASE.items()
            },
            semiring,
        )
        via_graph = self._graph_values(semiring)
        for (relation, row), value in via_graph.items():
            assert direct.annotation(relation, row) == value, (
                f"disagreement at {relation}{row!r}"
            )

    def test_why_provenance_agreement(self):
        semiring = WhySemiring()
        token_value = lambda tok: frozenset({frozenset({tok})})  # noqa: E731
        direct = annotate_mappings(
            PAPER_MAPPINGS,
            {
                rel: {row: token_value((rel, row)) for row in rows}
                for rel, rows in PAPER_BASE.items()
            },
            semiring,
        )
        via_graph = self._graph_values(semiring, token_value)
        for (relation, row), value in via_graph.items():
            assert direct.annotation(relation, row) == value


@settings(max_examples=25, deadline=None)
@given(
    base=st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=6)
)
def test_property_annotated_equals_graph_on_cyclic_mappings(base):
    mappings = (
        SchemaMapping.parse("m_rs", "R(x, y) -> S(y, x)"),
        SchemaMapping.parse("m_sr", "S(x, y) -> R(y, x)"),
    )
    semiring = BooleanSemiring()
    direct = annotate_mappings(
        mappings,
        {"R": {row: True for row in base}},
        semiring,
    )
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a", "b")),)),
            PeerSchema("P2", (RelationSchema("S", ("a", "b")),)),
        ),
        mappings,
    )
    system = ExchangeSystem(internal)
    system.db["R__l"].insert_many(base)
    system.recompute()
    graph = build_provenance_graph(system.db, system.encoding)
    via_graph = graph.evaluate(semiring)
    for (relation, row), value in via_graph.items():
        assert direct.annotation(relation, row) == value
