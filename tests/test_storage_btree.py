"""Unit and property-based tests for the B+-tree (Berkeley DB stand-in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree, BTreeError


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree

    def test_insert_and_get(self):
        tree = BPlusTree(branching=4)
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert len(tree) == 2

    def test_insert_overwrites_value(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_delete(self):
        tree = BPlusTree(branching=4)
        for i in range(10):
            tree.insert(i, i * 10)
        assert tree.delete(5) is True
        assert tree.get(5) is None
        assert tree.delete(5) is False
        assert len(tree) == 9

    def test_items_sorted(self):
        tree = BPlusTree(branching=4)
        for key in [9, 1, 5, 3, 7, 2, 8, 4, 6, 0]:
            tree.insert(key, str(key))
        assert [k for k, _ in tree.items()] == list(range(10))

    def test_range_scan_inclusive(self):
        tree = BPlusTree(branching=4)
        for i in range(20):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(5, 9)] == [5, 6, 7, 8, 9]
        assert [k for k, _ in tree.range(None, 2)] == [0, 1, 2]
        assert [k for k, _ in tree.range(17, None)] == [17, 18, 19]

    def test_min_max_key(self):
        tree = BPlusTree(branching=4)
        for key in [4, 2, 9]:
            tree.insert(key, None)
        assert tree.min_key() == 2
        assert tree.max_key() == 9

    def test_min_key_empty_raises(self):
        with pytest.raises(BTreeError):
            BPlusTree().min_key()

    def test_branching_too_small_raises(self):
        with pytest.raises(BTreeError):
            BPlusTree(branching=2)

    def test_large_sequential_insert_splits_root(self):
        tree = BPlusTree(branching=3)  # smallest legal: splits constantly
        n = 200
        for i in range(n):
            tree.insert(i, -i)
        tree.check_invariants()
        assert len(tree) == n
        assert [v for _, v in tree.items()] == [-i for i in range(n)]

    def test_delete_everything_in_reverse(self):
        tree = BPlusTree(branching=4)
        for i in range(100):
            tree.insert(i, i)
        for i in reversed(range(100)):
            assert tree.delete(i)
            tree.check_invariants()
        assert len(tree) == 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 60)),
        max_size=250,
    ),
    branching=st.integers(3, 8),
)
def test_btree_matches_dict_model(ops, branching):
    """Property: the tree behaves exactly like a dict, with sorted items,
    while maintaining structural invariants after every operation."""
    tree = BPlusTree(branching=branching)
    model: dict[int, int] = {}
    for op, key in ops:
        if op == "ins":
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for key, value in model.items():
        assert tree.get(key) == value


@settings(max_examples=30, deadline=None)
@given(
    keys=st.sets(st.integers(0, 1000), max_size=120),
    low=st.integers(0, 1000),
    high=st.integers(0, 1000),
)
def test_btree_range_matches_filter(keys, low, high):
    tree = BPlusTree(branching=5)
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range(low, high)] == expected
