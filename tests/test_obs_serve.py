"""End-to-end observability tests on the serving tier.

Scrapes ``GET /metrics`` from a live server around (and concurrently
with) a publish, asserting the Prometheus exposition parses, all
instrumented layer families are present, and counters are monotonic.
Also covers the normalized ``/stats`` schema and the stats-key shims.
"""

import threading

import pytest

from repro.obs.schema import LEGACY_KEYS, normalize

from test_serve import ServerThread, ServeClient, paper_cdss


def parse_exposition(text: str) -> dict[str, float]:
    """Prometheus text -> {series-with-labels: value}."""
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        assert key and value, f"malformed exposition line: {line!r}"
        series[key] = float(value)
    return series


class TestMetricsEndpoint:
    def test_scrape_covers_every_layer(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            text = client.metrics()
            assert text.endswith("\n")
            series = parse_exposition(text)
            for family in (
                "repro_engine_rounds_total",
                "repro_parallel_syncs_total",
                "repro_admission_admitted_total",
                "repro_index_applied_runs_total",
                "repro_wal_appends_total",
                "repro_serve_requests_total",
            ):
                assert family in series, f"{family} missing from /metrics"
            # TYPE comments are part of the exposition contract.
            assert "# TYPE repro_serve_request_seconds histogram" in text

    def test_counters_move_and_stay_monotonic_across_publish(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            before = parse_exposition(client.metrics())
            client.query("ans(i, n) :- B(i, n)")
            client.insert("G", (7, 8, 9))
            client.publish()
            after = parse_exposition(client.metrics())
            for key, value in before.items():
                if "_total" in key or "_count" in key or "_bucket" in key:
                    assert after.get(key, 0.0) >= value, key
            for name in (
                "repro_serve_requests_total",
                "repro_serve_publishes_total",
                "repro_exchange_publishes_total",
                "repro_engine_rounds_total",
                "repro_snapshot_refreshes_total",
                "repro_admission_admitted_total",
            ):
                assert after[name] > before.get(name, 0.0), name
            # The /query route appears in the request-latency histogram.
            assert (
                after['repro_serve_request_seconds_count{route="/query"}'] > 0
            )
            assert (
                after['repro_serve_request_seconds_count{route="/metrics"}']
                > 0
            )

    def test_scrape_mid_publish_is_monotonic(self):
        """Scrapes racing a publish parse cleanly and never go backwards."""
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            errors: list[Exception] = []
            scrapes: list[dict[str, float]] = []
            stop = threading.Event()

            def scraper():
                try:
                    with ServeClient(port=node.port) as own:
                        while not stop.is_set():
                            scrapes.append(parse_exposition(own.metrics()))
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            thread = threading.Thread(target=scraper)
            thread.start()
            try:
                for row in range(5):
                    client.insert("G", (100 + row, 200 + row, 300 + row))
                    client.publish()
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not errors
            assert len(scrapes) >= 2
            monotone = [
                "repro_serve_publishes_total",
                "repro_exchange_publishes_total",
                "repro_engine_rounds_total",
                "repro_snapshot_refreshes_total",
            ]
            for earlier, later in zip(scrapes, scrapes[1:]):
                for name in monotone:
                    assert later[name] >= earlier[name], name

    def test_statement_latency_series(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            prepared = client.prepare("ans(i, n) :- B(i, n)")
            client.execute(prepared["statement"])
            series = parse_exposition(client.metrics())
            key = (
                "repro_serve_statement_seconds_count"
                f'{{statement="{prepared["statement"]}"}}'
            )
            assert series[key] >= 1


class TestStatsSchema:
    def test_stats_carries_normalized_blocks(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            stats = client.stats()
            # Legacy top-level keys survive (deprecation shims) ...
            assert "requests" in stats
            # ... alongside the normalized blocks.
            assert stats["server"]["requests"] == stats["requests"]
            assert stats["server"]["uptime_seconds"] >= 0
            assert "rounds" in stats["engine"]
            assert "eval_cpu_seconds" in stats["engine"]
            assert stats["indexes"]["relations"] > 0
            admission = stats["admission"]
            assert admission["timeout_seconds"] == admission["timeout"]

    def test_normalize_rewrites_legacy_spellings(self):
        stats = {
            "requests": 3,
            "server": {"requests": 3},
            "parallel": {"transport": {"total": {"pickle_s": 0.5}}},
            "durability": {"wal_seq": 9},
            "admission": {"timeout": 30.0},
        }
        normalized = normalize(stats)
        assert (
            normalized["parallel"]["transport"]["total"]["pickle_seconds"]
            == 0.5
        )
        assert normalized["durability"]["wal_last_seq"] == 9
        assert normalized["admission"]["timeout_seconds"] == 30.0
        # Legacy spellings are folded away by normalize().
        assert "pickle_s" not in normalized["parallel"]["transport"]["total"]
        assert "wal_seq" not in normalized["durability"]
        assert "timeout" not in normalized["admission"]
        assert all(legacy in LEGACY_KEYS for legacy in ("wal_seq", "timeout"))

    def test_exchange_report_phases(self):
        cdss = paper_cdss()
        with cdss.batch() as tx:
            tx.insert("G", (50, 60, 70))
        report = cdss.update_exchange()
        assert set(report.phases) == {"evaluate", "merge", "index_settle"}
        for clocks in report.phases.values():
            assert clocks["wall_seconds"] >= 0.0
            assert clocks["cpu_seconds"] >= 0.0
        assert report.cpu_seconds >= 0.0
