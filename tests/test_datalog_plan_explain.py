"""Focused tests for plan execution details and EXPLAIN rendering."""

import pytest

from repro.datalog import (
    SemiNaiveEngine,
    parse_program,
    parse_rule,
)
from repro.datalog.ast import (
    Atom,
    Constant,
    Rule,
    SkolemFunction,
    SkolemTerm,
    SkolemValue,
    Variable,
)
from repro.datalog.explain import explain_program, explain_rule
from repro.datalog.plan import RulePlan, execute_plan
from repro.datalog.planner import CostBasedPlanner, PreparedPlanner
from repro.storage import Database, Instance

X, Y = Variable("x"), Variable("y")


def run_plan(rule, order, tables):
    db = {name: Instance(name, arity, rows) for name, (arity, rows) in tables.items()}

    def resolve(_index, atom):
        return db[atom.predicate]

    plan = RulePlan(rule, tuple(order))
    return [row for row, _ in execute_plan(plan, resolve)]


class TestExecutionDetails:
    def test_anti_join_filters(self):
        rule = parse_rule("H(x) :- A(x), not B(x)")
        rows = run_plan(
            rule, (0, 1), {"A": (1, [(1,), (2,)]), "B": (1, [(2,)])}
        )
        assert rows == [(1,)]

    def test_probe_uses_constants(self):
        rule = parse_rule("H(x) :- A(x, 5)")
        rows = run_plan(rule, (0,), {"A": (2, [(1, 5), (2, 6)])})
        assert rows == [(1,)]

    def test_head_filter_applied(self):
        rule = parse_rule("H(x) :- A(x)")
        plan = RulePlan(rule, (0,))
        source = Instance("A", 1, [(1,), (2,)])
        rows = [
            row
            for row, _ in execute_plan(
                plan,
                lambda i, a: source,
                head_filter=lambda row, subst: row[0] != 2,
            )
        ]
        assert rows == [(1,)]

    def test_skolem_pattern_in_body_matches_null(self):
        # H(n) :- U(n, f(n)) — matches only rows whose second column is the
        # null produced by f from the first column's value.
        f = SkolemFunction("f")
        rule = Rule(
            Atom("H", (X,)),
            (Atom("U", (X, SkolemTerm(f, (X,)))),),
        )
        rows = run_plan(
            rule,
            (0,),
            {
                "U": (
                    2,
                    [
                        (1, SkolemValue("f", (1,))),
                        (2, SkolemValue("f", (99,))),  # wrong argument
                        (3, SkolemValue("g", (3,))),  # wrong function
                        (4, "plain"),  # not a null
                    ],
                )
            },
        )
        assert rows == [(1,)]

    def test_skolem_pattern_binds_argument(self):
        # H(x) :- U(f(x)) — the null's argument BINDS x.
        f = SkolemFunction("f")
        rule = Rule(Atom("H", (X,)), (Atom("U", (SkolemTerm(f, (X,)),)),))
        rows = run_plan(
            rule,
            (0,),
            {"U": (1, [(SkolemValue("f", (7,)),), ("plain",)])},
        )
        assert rows == [(7,)]

    def test_bound_skolem_pattern_probes_index(self):
        # With x bound first, the Skolem pattern becomes a computable probe.
        f = SkolemFunction("f")
        rule = Rule(
            Atom("H", (X,)),
            (
                Atom("A", (X,)),
                Atom("U", (SkolemTerm(f, (X,)), Constant("tag"))),
            ),
        )
        rows = run_plan(
            rule,
            (0, 1),
            {
                "A": (1, [(1,), (2,)]),
                "U": (
                    2,
                    [
                        (SkolemValue("f", (1,)), "tag"),
                        (SkolemValue("f", (2,)), "other"),
                    ],
                ),
            },
        )
        assert rows == [(1,)]

    def test_engine_supports_skolem_body_rules(self):
        # Full engine roundtrip: derive nulls, then match them back.
        f = SkolemFunction("f_m3_c")
        program = parse_program("U(n, f_m3_c(n)) :- B(i, n)")
        match_rule = Rule(
            Atom("Back", (X,)),
            (Atom("U", (X, SkolemTerm(f, (X,)))),),
        )
        db = Database()
        db.create("B", 2, [(1, 5)])
        engine = SemiNaiveEngine()
        engine.run(program.extend([match_rule]), db)
        assert db["Back"].rows() == {(5,)}


class TestExplain:
    def test_explain_rule_mentions_steps(self):
        db = Database()
        db.create("A", 2, [(1, 2)])
        db.create("B", 1, [(2,)])
        text = explain_rule(parse_rule("H(x) :- A(x, y), not B(x)"), db)
        assert "1." in text and "2." in text
        assert "anti-join" in text
        assert "[1 rows]" in text  # cardinality annotation

    def test_explain_shows_probe_columns(self):
        db = Database()
        db.create("A", 2)
        db.create("B", 2)
        text = explain_rule(parse_rule("H(x, z) :- A(x, y), B(y, z)"), db)
        assert "full scan" in text
        assert "index probe" in text

    def test_explain_mentions_skolem_functions(self):
        text = explain_rule(parse_rule("U(n, f(n)) :- B(i, n)"))
        assert "labeled nulls via f" in text

    def test_explain_program_lists_strata(self):
        program = parse_program(
            """
            A(x) :- E(x)
            B(x) :- E(x), not A(x)
            """
        )
        text = explain_program(program)
        assert "stratum 0" in text and "stratum 1" in text
        assert "2 rules" in text

    def test_explain_with_cost_based_planner(self):
        db = Database()
        db.create("Big", 2, [(i, i) for i in range(50)])
        db.create("Tiny", 1, [(1,)])
        text = explain_rule(
            parse_rule("H(x, y) :- Big(x, y), Tiny(y)"),
            db,
            planner=CostBasedPlanner(),
        )
        # The tiny relation is scanned first.
        first_step = text.splitlines()[1]
        assert "Tiny" in first_step


class TestPlannerEdgeCases:
    def test_single_atom_rule(self):
        for planner in (PreparedPlanner(), CostBasedPlanner()):
            db = Database()
            db.create("A", 1)
            plan = planner.plan(parse_rule("H(x) :- A(x)"), db, None)
            assert plan.order == (0,)

    def test_delta_position_always_first(self):
        rule = parse_rule("H(x, z) :- A(x, y), B(y, z), C(z, x)")
        db = Database()
        for name in ("A", "B", "C"):
            db.create(name, 2)
        for planner in (PreparedPlanner(), CostBasedPlanner()):
            for delta in range(3):
                plan = planner.plan(rule, db, delta)
                assert plan.order[0] == delta

    def test_missing_relation_planned_gracefully(self):
        # Cost-based planning over a predicate not in the catalog.
        db = Database()
        plan = CostBasedPlanner().plan(parse_rule("H(x) :- Ghost(x)"), db, None)
        assert plan.order == (0,)
