"""Tests for the pluggable index-maintenance policies (storage/indexes.py):

* deferred-policy correctness: probes never see stale index state, not
  even inside a deferral scope (the snapshot-consistency rule);
* flush barriers: scope exits settle or retire every index's debt;
* NaiveEngine-agreement property under the deferred policy;
* Instance.copy carrying index definitions and policy;
* policy plumbing through Database / ExchangeSystem / CDSS / SystemSpec.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_program
from repro.storage import (
    Database,
    Instance,
    POLICY_DEFERRED,
    POLICY_EAGER,
    StorageError,
)

POLICIES = (POLICY_EAGER, POLICY_DEFERRED)


def reference_index(rows, cols):
    index = {}
    for row in rows:
        index.setdefault(tuple(row[c] for c in cols), set()).add(row)
    return index


def assert_index_exact(inst, cols):
    """Every key of a reference index probes to exactly the right bucket."""
    expected = reference_index(inst.rows(), cols)
    for key, bucket in expected.items():
        assert set(inst.lookup(cols, key)) == bucket
    # And a key that matches nothing probes empty.
    assert set(inst.lookup(cols, ("__missing__",) * len(cols))) == set()


class TestDeferredInstance:
    def test_probe_inside_scope_never_stale(self):
        """The regression test: a probe inside a deferral scope must see
        every mutation issued earlier in the scope."""
        inst = Instance("R", 2, [(1, "a")], index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.insert((2, "b"))
            assert set(inst.lookup([0], (2,))) == {(2, "b")}
            inst.delete((1, "a"))
            assert set(inst.lookup([0], (1,))) == set()
            inst.insert_many([(3, "c"), (4, "d")])
            assert set(inst.lookup([0], (3,))) == {(3, "c")}
            inst.delete_many([(3, "c")])
            assert set(inst.lookup([0], (3,))) == set()
            assert_index_exact(inst, (0,))

    def test_mutations_defer_until_probe_or_flush(self):
        inst = Instance("R", 2, index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        inst.ensure_index([1])
        with inst.defer_maintenance():
            inst.insert_many([(1, "a"), (2, "b")])
            inst.delete((1, "a"))
            assert inst.pending_index_ops() == 2
            # Probing column 0 syncs only that index.
            assert set(inst.lookup([0], (2,))) == {(2, "b")}
            assert inst.pending_index_ops() == 2  # [1] still behind
        assert inst.pending_index_ops() == 0

    def test_scope_exit_is_flush_barrier(self):
        inst = Instance("R", 1, index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.insert((1,))
            assert inst.pending_index_ops() == 1
        assert inst.pending_index_ops() == 0
        assert set(inst.lookup([0], (1,))) == {(1,)}

    def test_nested_scopes_flush_only_at_outermost_exit(self):
        inst = Instance("R", 1, [(0,)], index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            with inst.defer_maintenance():
                inst.insert((1,))
            # Inner exit is not a barrier.
            assert inst.pending_index_ops() == 1
            inst.insert((2,))
        assert inst.pending_index_ops() == 0

    def test_churn_cancels_before_touching_buckets(self):
        inst = Instance("R", 1, [(1,)], index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        inst.flush_indexes()
        with inst.defer_maintenance():
            inst.insert((2,))
            inst.delete((2,))
            inst.delete((1,))
            inst.insert((1,))
        assert inst.rows() == {(1,)}
        assert set(inst.lookup([0], (1,))) == {(1,)}
        assert set(inst.lookup([0], (2,))) == set()

    def test_cold_rebuild_scale_debt_is_retired_at_barrier(self):
        """An index whose debt outweighs the table is dropped at the
        barrier and lazily rebuilt (exactly once) on its next probe."""
        inst = Instance("R", 2, index_policy=POLICY_DEFERRED)
        inst.ensure_index([1])
        with inst.defer_maintenance():
            inst.insert_many([(i, i % 3) for i in range(30)])
        # Retired: the definition is gone, but a probe self-heals.
        assert inst.indexed_columns() == ()
        assert inst.pending_index_ops() == 0
        assert set(inst.lookup([1], (0,))) == {
            (i, 0) for i in range(0, 30, 3)
        }

    def test_turnover_and_clear_inside_scope(self):
        inst = Instance("R", 1, [(1,), (2,)], index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.replace_contents([(3,), (4,)])
            assert set(inst.lookup([0], (3,))) == {(3,)}
            assert set(inst.lookup([0], (1,))) == set()
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.clear()
            assert set(inst.lookup([0], (3,))) == set()
        assert inst.rows() == frozenset()

    def test_eager_scope_is_noop(self):
        inst = Instance("R", 1, index_policy=POLICY_EAGER)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.insert((1,))
            assert inst.pending_index_ops() == 0
        assert set(inst.lookup([0], (1,))) == {(1,)}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Instance("R", 1, index_policy="bogus")
        with pytest.raises(StorageError):
            Database(index_policy="bogus")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_randomized_mutations_match_reference(self, policy):
        import random

        rng = random.Random(7)
        inst = Instance("R", 2, index_policy=policy)
        inst.ensure_index([0])
        inst.ensure_index([1])
        shadow = set()
        for step in range(300):
            if rng.random() < 0.3 and step % 37 == 0:
                with inst.defer_maintenance():
                    for _ in range(rng.randrange(5)):
                        row = (rng.randrange(6), rng.randrange(4))
                        if rng.random() < 0.5:
                            inst.insert(row)
                            shadow.add(row)
                        else:
                            inst.delete(row)
                            shadow.discard(row)
                    if rng.random() < 0.5:
                        probe_key = (rng.randrange(6),)
                        assert set(inst.lookup([0], probe_key)) == {
                            r for r in shadow if r[0] == probe_key[0]
                        }
            else:
                row = (rng.randrange(6), rng.randrange(4))
                if rng.random() < 0.5:
                    inst.insert(row)
                    shadow.add(row)
                else:
                    inst.delete(row)
                    shadow.discard(row)
        assert inst.rows() == shadow
        assert_index_exact(inst, (0,))
        assert_index_exact(inst, (1,))


class TestInstanceCopy:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_copy_carries_index_definitions_and_policy(self, policy):
        inst = Instance(
            "R", 2, [(1, "a"), (2, "b")], index_policy=policy
        )
        inst.ensure_index([0])
        inst.ensure_index([1])
        clone = inst.copy()
        assert clone.index_policy == policy
        assert set(clone.indexed_columns()) == {(0,), (1,)}
        assert clone.rows() == inst.rows()
        assert_index_exact(clone, (0,))
        # The copy is independent: mutating one leaves the other intact.
        clone.insert((3, "c"))
        assert (3, "c") not in inst
        assert set(inst.lookup([0], (3,))) == set()

    def test_copy_of_deferred_instance_with_pending_debt_is_exact(self):
        inst = Instance("R", 1, [(1,)], index_policy=POLICY_DEFERRED)
        inst.ensure_index([0])
        with inst.defer_maintenance():
            inst.insert((2,))
            clone = inst.copy()  # copy synchronizes, not retires
            assert set(clone.indexed_columns()) == {(0,)}
            assert set(clone.lookup([0], (2,))) == {(2,)}

    def test_database_copy_carries_policy_and_indexes(self):
        db = Database(index_policy=POLICY_DEFERRED)
        db.create("R", 2, [(1, "a")])
        db["R"].ensure_index([0])
        clone = db.copy()
        assert clone.index_policy == POLICY_DEFERRED
        assert clone["R"].index_policy == POLICY_DEFERRED
        assert set(clone["R"].indexed_columns()) == {(0,)}
        assert clone["R"].rows() == {(1, "a")}


class TestDatabaseScopes:
    def test_relations_created_inside_scope_are_enrolled(self):
        db = Database(index_policy=POLICY_DEFERRED)
        with db.defer_maintenance():
            inst = db.create("R", 1)
            inst.ensure_index([0])
            inst.insert((1,))
            assert db.pending_index_ops() == 1
            assert set(inst.lookup([0], (1,))) == {(1,)}
        assert db.pending_index_ops() == 0

    def test_scope_exit_settles_every_relation(self):
        db = Database(index_policy=POLICY_DEFERRED)
        for name in ("R", "S"):
            inst = db.create(name, 1)
            inst.ensure_index([0])
        with db.defer_maintenance():
            db["R"].insert((1,))
            db["S"].insert((2,))
            assert db.pending_index_ops() == 2
        assert db.pending_index_ops() == 0


class TestEngineBarriers:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_run_leaves_no_pending_maintenance(self, policy):
        """Flush-at-stratum-boundary exactness: after an engine run, every
        relation's indexes are settled (synced or retired — no debt)."""
        db = Database(index_policy=policy)
        db.create("E", 2, [(1, 2), (2, 3), (3, 4)])
        prog = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        )
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        assert db.pending_index_ops() == 0
        db["E"].insert((4, 5))
        engine.run_insertions(prog, db, {"E": {(4, 5)}})
        assert db.pending_index_ops() == 0
        assert (1, 5) in db["T"]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_engines_agree_across_policies(self, policy):
        db = Database(index_policy=policy)
        db.create("E", 2, [(1, 2), (2, 3), (3, 1), (4, 4)])
        prog = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        )
        SemiNaiveEngine().run(prog, db)
        reference = Database()
        reference.create("E", 2, db["E"])
        NaiveEngine().run(prog, reference)
        assert db["T"].rows() == reference["T"].rows()


@st.composite
def random_edges(draw):
    n = draw(st.integers(2, 6))
    return draw(
        st.sets(st.tuples(st.integers(0, n), st.integers(0, n)), max_size=18)
    )


@settings(max_examples=25, deadline=None)
@given(edges=random_edges(), extra=random_edges())
def test_property_deferred_policy_agrees_with_naive(edges, extra):
    """The NaiveEngine-agreement property under the deferred policy,
    including a warm incremental pass — mirrors the eager-policy property
    in test_engine_hotpath.py."""
    prog = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        Loop(x) :- T(x, x)
        Safe(x) :- V(x), not Loop(x)
        """
    )
    positive = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        """
    )
    nodes = {x for e in edges | extra for x in e}
    db = Database(index_policy=POLICY_DEFERRED)
    db.create("E", 2, edges)
    db.create("V", 1, [(x,) for x in nodes])
    engine = SemiNaiveEngine()
    engine.run(prog, db)
    assert db.pending_index_ops() == 0

    new_edges = extra - edges
    for edge in new_edges:
        db["E"].insert(edge)
    engine.run_insertions(positive, db, {"E": new_edges})
    assert db.pending_index_ops() == 0

    reference = Database()
    reference.create("E", 2, edges | extra)
    reference.create("V", 1, [(x,) for x in nodes])
    NaiveEngine().run(positive, reference)
    assert db["T"].rows() == reference["T"].rows()


class TestExchangePolicies:
    def _run_workload(self, policy):
        from repro.core.cdss import CDSS

        cdss = CDSS("t", index_policy=policy)
        cdss.add_peer("P1", {"G": ("id", "can", "nam")})
        cdss.add_peer("P2", {"B": ("id", "nam")})
        cdss.add_peer("P3", {"U": ("nam", "can")})
        cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
        cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
        cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
        with cdss.batch() as tx:
            for i in range(12):
                tx.insert("G", (i, i + 1, i + 2))
            tx.insert("B", (3, 5))
            tx.insert("U", (2, 5))
        cdss.update_exchange()
        # Churn: delete a few base rows, insert replacements, exchange.
        with cdss.batch() as tx:
            for i in range(0, 12, 3):
                tx.delete("G", (i, i + 1, i + 2))
            tx.insert("G", (100, 101, 102))
        cdss.update_exchange()
        return cdss

    @pytest.mark.parametrize("strategy", ("incremental", "dred"))
    def test_policies_reach_identical_state(self, strategy):
        results = {}
        for policy in POLICIES:
            cdss = self._run_workload(policy)
            cdss.strategy = strategy
            with cdss.batch() as tx:
                tx.delete("G", (1, 2, 3))
            cdss.update_exchange()
            assert cdss.system().is_consistent()
            results[policy] = {
                rel: cdss.relation(rel).to_rows() for rel in ("G", "B", "U")
            }
        assert results[POLICY_EAGER] == results[POLICY_DEFERRED]

    def test_exchange_db_has_no_pending_debt_after_exchange(self):
        cdss = self._run_workload(POLICY_DEFERRED)
        assert cdss.system().db.pending_index_ops() == 0
        assert cdss.index_policy == POLICY_DEFERRED
        assert cdss.system().index_policy == POLICY_DEFERRED


class TestSpecPolicyRoundTrip:
    def test_spec_carries_index_policy(self):
        from repro.api.spec import SpecError, SystemSpec

        spec = SystemSpec(name="s", index_policy=POLICY_EAGER)
        document = spec.to_dict()
        assert document["index_policy"] == POLICY_EAGER
        again = SystemSpec.from_json(spec.to_json())
        assert again.index_policy == POLICY_EAGER
        # Default is the deferred policy; bad values are rejected loudly.
        assert SystemSpec().index_policy == POLICY_DEFERRED
        with pytest.raises(SpecError):
            SystemSpec(index_policy="bogus")

    def test_cdss_round_trips_policy(self):
        from repro.core.cdss import CDSS

        cdss = CDSS("t", index_policy=POLICY_EAGER)
        cdss.add_peer("P", {"R": ("a",)})
        spec = cdss.to_spec()
        assert spec.index_policy == POLICY_EAGER
        rebuilt = CDSS.from_spec(spec)
        assert rebuilt.index_policy == POLICY_EAGER
        assert rebuilt.system().db.index_policy == POLICY_EAGER


class TestHotnessTracking:
    """Probe-hotness: hot indexes are settled at barriers, cold ones are
    still retired to their next probe."""

    def _instance_with_indexes(self):
        inst = Instance("R", 2, index_policy=POLICY_DEFERRED)
        inst.insert_many([(i, i % 5) for i in range(50)])
        inst.ensure_index((0,))
        inst.ensure_index((1,))
        return inst

    def test_hot_index_settled_cold_index_retired_at_barrier(self):
        inst = self._instance_with_indexes()
        # Heat up column 0 (the prepare_probe path plans/pipelines use);
        # column 1 stays cold.
        for _ in range(3):
            inst.prepare_probe((0,))
        with inst.defer_maintenance():
            # Rebuild-scale churn: the whole table turns over.
            inst.delete_many([(i, i % 5) for i in range(50)])
            inst.insert_many([(i, i % 5) for i in range(50, 150)])
        stats = inst.index_stats()
        assert stats["hot_settled"] == 1
        assert stats["retired"] == 1
        # The hot index survived the barrier fully settled...
        assert (0,) in inst.indexed_columns()
        assert inst.pending_index_ops() == 0
        # ...and the cold one was dropped (rebuilt on its next probe).
        assert (1,) not in inst.indexed_columns()
        assert_index_exact(inst, (0,))
        assert_index_exact(inst, (1,))

    def test_hotness_decays_across_barriers(self):
        inst = self._instance_with_indexes()
        inst.prepare_probe((0,))  # count 1: hot for exactly one barrier
        with inst.defer_maintenance():
            inst.delete_many([(i, i % 5) for i in range(50)])
            inst.insert_many([(i, 0) for i in range(50, 150)])
        assert inst.index_stats()["hot_settled"] == 1
        # No probes since; the next rebuild-scale barrier retires it.
        with inst.defer_maintenance():
            inst.delete_many([(i, 0) for i in range(50, 150)])
            inst.insert_many([(i, 1) for i in range(150, 350)])
        assert (0,) not in inst.indexed_columns()
        assert_index_exact(inst, (0,))

    def test_small_debt_never_retires_regardless_of_hotness(self):
        inst = self._instance_with_indexes()
        with inst.defer_maintenance():
            inst.insert_many([(100, 1), (101, 2)])  # tiny suffix
        assert (0,) in inst.indexed_columns()
        assert (1,) in inst.indexed_columns()
        assert inst.index_stats()["retired"] == 0

    def test_probe_counts_exposed_in_stats(self):
        inst = self._instance_with_indexes()
        inst.prepare_probe((0,))
        inst.prepare_probe((0,))
        counts = inst.index_stats()["probe_counts"]
        assert counts[(0,)] == 2
        assert counts.get((1,), 0) == 0
        # Eager instances expose the policy-agnostic baseline shape.
        eager = Instance("E", 1, [(1,)], index_policy=POLICY_EAGER)
        assert eager.index_stats()["policy"] == POLICY_EAGER


class TestMaintenanceLogSpill:
    """The size cap: very long deferral epochs keep the log O(live rows)."""

    def test_log_spills_once_cap_exceeded(self, monkeypatch):
        from repro.storage.indexes import DeferredIndexSet

        monkeypatch.setattr(DeferredIndexSet, "SPILL_MIN_ROWS", 64)
        inst = Instance("R", 2, index_policy=POLICY_DEFERRED)
        inst.insert_many([(i, i) for i in range(10)])
        inst.ensure_index((0,))
        max_pending = 0
        with inst.defer_maintenance():
            # Churn far past the cap: rows come and go repeatedly.
            for wave in range(40):
                rows = [(1000 + wave * 10 + j, wave) for j in range(10)]
                inst.insert_many(rows)
                inst.delete_many(rows)
                max_pending = max(max_pending, inst.pending_index_ops())
            stats = inst.index_stats()
            assert stats["spills"] > 0
            # The log was repeatedly coalesced: pending work stayed
            # bounded by the cap instead of growing with the epoch.
            assert max_pending <= 64 + 20
        assert inst.pending_index_ops() == 0
        assert len(inst) == 10
        assert_index_exact(inst, (0,))

    def test_spill_preserves_probe_results(self, monkeypatch):
        from repro.storage.indexes import DeferredIndexSet

        monkeypatch.setattr(DeferredIndexSet, "SPILL_MIN_ROWS", 32)
        inst = Instance("R", 1, index_policy=POLICY_DEFERRED)
        inst.insert_many([(i,) for i in range(20)])
        inst.ensure_index((0,))
        with inst.defer_maintenance():
            for i in range(200):
                inst.insert((1000 + i,))
                if i % 7 == 0:
                    # Interleaved probes stay exact across spills.
                    assert set(inst.lookup((0,), (1000 + i,))) == {(1000 + i,)}
        assert len(inst) == 220
        assert_index_exact(inst, (0,))

    def test_long_epoch_without_probes_stays_bounded(self, monkeypatch):
        from repro.storage.indexes import DeferredIndexSet

        monkeypatch.setattr(DeferredIndexSet, "SPILL_MIN_ROWS", 16)
        inst = Instance("R", 1, index_policy=POLICY_DEFERRED)
        inst.insert_many([(i,) for i in range(8)])
        inst.ensure_index((0,))
        with inst.defer_maintenance():
            for wave in range(50):
                rows = [(100 + wave * 4 + j,) for j in range(4)]
                inst.insert_many(rows)
                inst.delete_many(rows)
                cap = max(
                    DeferredIndexSet.SPILL_MIN_ROWS,
                    DeferredIndexSet.SPILL_FACTOR * len(inst),
                )
                assert inst._indexes._log_rows <= cap + 8
        assert inst.rows() == frozenset((i,) for i in range(8))
        assert_index_exact(inst, (0,))
