"""Tests for the concurrent serving tier (``repro.serve``).

Covers the snapshot layer (pin / immutability / result cache), the
snapshot-pinned execution paths on prepared queries and programs, the
mid-exchange isolation property (a snapshot pinned before ``publish``
returns byte-identical answers during and after the exchange — including
shard-parallel evaluation and DRed deletions mid-flight), the asyncio
HTTP server end to end, admission control (503/504), and the
``python -m repro serve`` CLI in a child process.
"""

import asyncio
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import CDSS
from repro.core.query import QueryError
from repro.schema.internal import output_name
from repro.serve import (
    AdmissionController,
    QueueFullError,
    ReproServer,
    ServeClient,
    ServeHTTPError,
)
from repro.serve.protocol import Statement
from repro.storage.database import Database
from repro.storage.instance import Instance


def paper_cdss(**kwargs) -> CDSS:
    cdss = CDSS("serve", **kwargs)
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()
    return cdss


# ---------------------------------------------------------------------------
# DatabaseSnapshot
# ---------------------------------------------------------------------------


class TestDatabaseSnapshot:
    def test_pin_copies_selected_relations(self):
        db = Database()
        r = Instance("R", 2)
        r.insert((1, 2))
        db.attach(r)
        snapshot = db.pin(["R"])
        assert snapshot.names == ("R",)
        assert snapshot.version == db.version
        assert set(snapshot.db.get("R").rows()) == {(1, 2)}

    def test_snapshot_is_immune_to_source_mutation(self):
        db = Database()
        r = Instance("R", 2)
        r.insert((1, 2))
        db.attach(r)
        snapshot = db.pin()
        version = snapshot.version
        r.insert((3, 4))
        r.delete((1, 2))
        assert set(snapshot.db.get("R").rows()) == {(1, 2)}
        assert snapshot.version == version
        assert db.version > version

    def test_snapshot_mutation_does_not_touch_source(self):
        db = Database()
        r = Instance("R", 1)
        r.insert((1,))
        db.attach(r)
        snapshot = db.pin()
        snapshot.db.get("R").insert((9,))
        assert set(r.rows()) == {(1,)}

    def test_result_cache(self):
        db = Database()
        snapshot = db.pin()
        calls = []

        def compute():
            calls.append(1)
            return ("rows",)

        assert snapshot.cached("k", compute) == ("rows",)
        assert snapshot.cached("k", compute) == ("rows",)
        assert len(calls) == 1
        # Unhashable keys fall back to uncached computation.
        assert snapshot.cached(["un", "hashable"], compute) == ("rows",)
        assert len(calls) == 2


# ---------------------------------------------------------------------------
# Pinned execution on prepared queries / programs
# ---------------------------------------------------------------------------


def pin_outputs(cdss):
    system = cdss.system()
    names = tuple(output_name(r) for r in system.internal.relation_names())
    return system.db.pin(names)


class TestExecuteAt:
    def test_pinned_query_matches_live_at_pin_time(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        snapshot = pin_outputs(cdss)
        assert (
            prepared.execute_at(snapshot).to_rows()
            == prepared.execute().to_rows()
        )

    def test_pinned_query_ignores_later_publishes(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        snapshot = pin_outputs(cdss)
        before = sorted(prepared.execute_at(snapshot))
        cdss.peer("PBioSQL").insert("B", (77, 88))
        cdss.update_exchange()
        assert sorted(prepared.execute_at(snapshot)) == before
        assert (77, 88) in prepared.execute().to_rows()
        assert (77, 88) not in prepared.execute_at(snapshot).to_rows()

    def test_pinned_parameterized_and_modes(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
        snapshot = pin_outputs(cdss)
        assert prepared.execute_at(snapshot, n=5).to_rows() == {(3,)}
        with_nulls = prepared.execute_at(snapshot, n=5).with_nulls()
        assert with_nulls.to_rows() >= {(3,)}
        # Ordering works on pinned answers too.
        ordered = cdss.prepare("ans(i, n) :- B(i, n)").execute_at(snapshot)
        assert list(ordered.order_by("i", "n").limit(1)) == [(1, 3)]

    def test_pinned_annotated_rejected(self):
        cdss = paper_cdss()
        prepared = cdss.prepare("ans(i, n) :- B(i, n)")
        snapshot = pin_outputs(cdss)
        with pytest.raises(QueryError):
            prepared.execute_at(snapshot).annotated()

    def test_pinned_program_matches_live_and_stays_pinned(self):
        cdss = paper_cdss()
        program = cdss.prepare_program(
            "big(i) :- B(i, n), U(n, c)\nans(i) :- big(i)"
        )
        snapshot = pin_outputs(cdss)
        before = program.execute_at(snapshot).to_rows()
        assert before == program.execute().to_rows()
        cdss.peer("PBioSQL").insert("B", (41, 42))
        cdss.peer("PuBio").insert("U", (42, 9))
        cdss.update_exchange()
        assert program.execute_at(snapshot).to_rows() == before
        assert (41,) in program.execute().to_rows()


# ---------------------------------------------------------------------------
# The isolation property: pinned answers are byte-identical mid-exchange
# ---------------------------------------------------------------------------


class _ExchangePauser:
    """Blocks the exchange thread on its first mutation of a relation.

    Registered as an :meth:`Instance.add_watcher` callback on a live
    output relation: the first mutation from the exchange thread sets
    ``reached`` (live state is now torn — some deltas applied, others
    not) and parks the writer until the main thread calls ``resume``.
    """

    def __init__(self) -> None:
        self.reached = threading.Event()
        self._resume = threading.Event()
        self._main = threading.get_ident()

    def __call__(self) -> None:
        if threading.get_ident() == self._main or self.reached.is_set():
            return
        self.reached.set()
        self._resume.wait(timeout=30)

    def resume(self) -> None:
        self._resume.set()


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("strategy", ["incremental", "dred"])
def test_snapshot_isolated_mid_exchange(workers, strategy):
    """A snapshot pinned before publish() serves byte-identical answers
    while the exchange is mid-flight (live tables torn) and after it
    completes — under sequential and shard-parallel evaluation, for
    insertions and DRed deletions."""
    cdss = paper_cdss(workers=workers)
    prepared = cdss.prepare("ans(i, n) :- B(i, n)")
    program = cdss.prepare_program("ans(i) :- B(i, n), U(n, c)")

    snapshot = pin_outputs(cdss)
    query_before = json.dumps(sorted(prepared.execute_at(snapshot)))
    program_before = json.dumps(sorted(program.execute_at(snapshot)))

    if strategy == "dred":
        cdss.peer("PGUS").delete("G", (1, 2, 3))
    else:
        cdss.peer("PGUS").insert("G", (10, 20, 30))

    pauser = _ExchangePauser()
    live_b = cdss.system().db.get(output_name("B"))
    live_b.add_watcher(pauser)
    failure = []

    def exchange():
        try:
            cdss.update_exchange(strategy=strategy)
        except Exception as error:  # pragma: no cover - failure path
            failure.append(error)

    writer = threading.Thread(target=exchange)
    writer.start()
    try:
        assert pauser.reached.wait(timeout=30), "exchange never mutated B"
        # The writer is parked mid-exchange; live state is torn.  The
        # pinned snapshot still answers byte-for-byte identically.
        mid_query = json.dumps(sorted(prepared.execute_at(snapshot)))
        mid_program = json.dumps(sorted(program.execute_at(snapshot)))
        assert mid_query == query_before
        assert mid_program == program_before
    finally:
        pauser.resume()
        writer.join(timeout=60)
        live_b.remove_watcher(pauser)
    assert not failure
    # ... and after the exchange completes, still identical.
    assert json.dumps(sorted(prepared.execute_at(snapshot))) == query_before
    assert json.dumps(sorted(program.execute_at(snapshot))) == program_before
    # The live system, by contrast, has moved on.
    assert prepared.execute().to_rows() != prepared.execute_at(
        snapshot
    ).to_rows()


# ---------------------------------------------------------------------------
# The asyncio server, end to end
# ---------------------------------------------------------------------------


class ServerThread:
    def __init__(self, cdss, **kwargs) -> None:
        self._cdss = cdss
        self._kwargs = kwargs
        self._ready = threading.Event()
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = ReproServer(self._cdss, port=0, **self._kwargs)
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=30)
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def __exit__(self, *_exc) -> None:
        try:
            with ServeClient(port=self.port, timeout=10) as client:
                client.shutdown()
        except Exception:
            pass
        self._thread.join(timeout=60)


class TestServerEndToEnd:
    def test_full_request_cycle(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            health = client.health()
            assert health["ok"] and health["snapshot_version"] >= 0

            prepared = client.prepare("ans(i, n) :- B(i, n)")
            statement = prepared["statement"]
            assert prepared["columns"] == ["i", "n"]
            # Re-preparing identical text returns the same statement id.
            assert client.prepare("ans(i, n) :- B(i, n)")["statement"] == (
                statement
            )

            result = client.execute(statement, order=["i", "n"])
            assert result["rows"][0] == [1, 3]
            assert result["count"] == len(result["rows"])
            assert result["pinned_version"] is not None

            page = client.execute(statement, order=["-i", "-n"], limit=1)
            assert page["rows"] == [[3, 5]]

            lookup = client.query(
                "ans(i) :- B(i, n)", params=["n"], bindings={"n": 5}
            )
            assert lookup["rows"] == [[3]]

            annotated = client.execute(statement, mode="annotated", limit=1)
            assert annotated["pinned_version"] is None
            assert "provenance" in annotated["rows"][0]

            listed = client.statements()
            assert any(s["statement"] == statement for s in listed)

    def test_edit_publish_refreshes_snapshot(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            statement = client.prepare("ans(i, n) :- B(i, n)")["statement"]
            before = client.execute(statement)
            staged = client.insert("B", (123, 456))
            assert staged["staged"] == 1
            # Staged but unpublished: the snapshot is unchanged.
            assert client.execute(statement)["rows"] == before["rows"]
            report = client.publish()
            assert report["ok"] and report["inserted"] >= 1
            after = client.execute(statement)
            assert [123, 456] in after["rows"]
            assert after["pinned_version"] != before["pinned_version"]
            stats = client.stats()
            assert stats["snapshot"]["refreshes"] == 1
            assert stats["publishes"] == 1

    def test_change_stream(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            # Nothing published since boot: the stream starts empty.
            initial = client.changes()
            assert initial["changes"] == []
            cursor = initial["version"]

            client.insert("B", (123, 456))
            client.publish()
            polled = client.changes(since=cursor)
            assert polled["version"] == cursor + 1
            assert len(polled["changes"]) == 1
            batch = polled["changes"][0]
            assert batch["version"] == cursor + 1
            assert [123, 456] in batch["relations"]["B"]["inserted"]
            assert batch["relations"]["B"]["deleted"] == []
            cursor = polled["version"]

            # A deletion arrives as a negative change through the same
            # unified maintenance pass.
            client.edit(
                [{"op": "delete", "relation": "B", "row": [123, 456]}]
            )
            client.publish()
            polled = client.changes(since=cursor)
            assert len(polled["changes"]) == 1
            assert [123, 456] in polled["changes"][0]["relations"]["B"][
                "deleted"
            ]
            cursor = polled["version"]

            # Caught-up cursors poll empty; stale cursors replay the tail.
            assert client.changes(since=cursor)["changes"] == []
            assert len(client.changes(since=0)["changes"]) == 2

            with pytest.raises(ServeHTTPError) as bad_since:
                client.request("GET", "/changes?since=later")
            assert bad_since.value.status == 400
            assert bad_since.value.code == "bad_since"

    def test_change_stream_long_poll_times_out_empty(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            cursor = client.changes()["version"]
            started = time.monotonic()
            polled = client.changes(since=cursor, wait=0.4)
            elapsed = time.monotonic() - started
            # A timed-out long poll is a normal empty response, not an
            # error — clients need no special timeout handling.
            assert polled["changes"] == []
            assert polled["version"] == cursor
            assert elapsed >= 0.35

            with pytest.raises(ServeHTTPError) as bad_wait:
                client.request("GET", "/changes?since=0&wait=soon")
            assert bad_wait.value.status == 400
            assert bad_wait.value.code == "bad_wait"

    def test_change_stream_long_poll_wakes_on_publish(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            cursor = client.changes()["version"]

            def later_publish():
                time.sleep(0.3)
                with ServeClient(port=node.port) as writer:
                    writer.insert("B", (77, 88))
                    writer.publish()

            publisher = threading.Thread(target=later_publish)
            publisher.start()
            started = time.monotonic()
            try:
                polled = client.changes(since=cursor, wait=30)
            finally:
                publisher.join(timeout=60)
            elapsed = time.monotonic() - started
            # Woken by the publish, long before the 30s wait elapses.
            assert elapsed < 10
            assert len(polled["changes"]) == 1
            batch = polled["changes"][0]
            assert [77, 88] in batch["relations"]["B"]["inserted"]

    def test_error_paths(self):
        cdss = paper_cdss()
        with ServerThread(cdss) as node, ServeClient(port=node.port) as client:
            with pytest.raises(ServeHTTPError) as not_found:
                client.execute("stmt-999")
            assert not_found.value.status == 404

            with pytest.raises(ServeHTTPError) as bad_query:
                client.prepare("ans(x) :- Nope(x)")
            assert bad_query.value.status == 400
            assert bad_query.value.code == "prepare_error"

            with pytest.raises(ServeHTTPError) as bad_route:
                client.request("GET", "/nope")
            assert bad_route.value.status == 404

            with pytest.raises(ServeHTTPError) as bad_mode:
                statement = client.prepare("ans(i) :- B(i, n)")["statement"]
                client.execute(statement, mode="maybe")
            assert bad_mode.value.status == 400

            with pytest.raises(ServeHTTPError) as bad_edit:
                client.edit([{"op": "upsert", "relation": "B", "row": [1, 2]}])
            assert bad_edit.value.status == 400


class TestAdmissionControl:
    def test_queue_full_rejects_with_503(self, monkeypatch):
        cdss = paper_cdss()
        release = threading.Event()
        original = Statement.run

        def slow_run(self, *args, **kwargs):
            release.wait(timeout=30)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Statement, "run", slow_run)
        with ServerThread(
            cdss, max_inflight=1, max_queue=0, timeout=30.0, readers=1
        ) as node:
            with ServeClient(port=node.port) as setup:
                # prepare goes through the write path, not admission.
                statement = setup.prepare("ans(i, n) :- B(i, n)")["statement"]
            statuses = []
            lock = threading.Lock()

            def probe():
                with ServeClient(port=node.port, timeout=60) as client:
                    try:
                        client.execute(statement)
                        outcome = 200
                    except ServeHTTPError as error:
                        outcome = error.status
                with lock:
                    statuses.append(outcome)

            threads = [threading.Thread(target=probe) for _ in range(6)]
            for thread in threads:
                thread.start()
            time.sleep(0.5)
            release.set()
            for thread in threads:
                thread.join(timeout=60)
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1
            assert set(statuses) <= {200, 503}
            with ServeClient(port=node.port) as client:
                admission = client.stats()["admission"]
            assert admission["rejected"] == statuses.count(503)
        release.set()

    def test_slow_statement_times_out_with_504(self, monkeypatch):
        cdss = paper_cdss()
        release = threading.Event()
        original = Statement.run

        def slow_run(self, *args, **kwargs):
            release.wait(timeout=30)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Statement, "run", slow_run)
        try:
            with ServerThread(
                cdss, max_inflight=4, max_queue=4, timeout=0.2, readers=1
            ) as node:
                with ServeClient(port=node.port) as setup:
                    statement = setup.prepare("ans(i, n) :- B(i, n)")[
                        "statement"
                    ]
                with ServeClient(port=node.port, timeout=60) as client:
                    with pytest.raises(ServeHTTPError) as timed_out:
                        client.execute(statement)
                assert timed_out.value.status == 504
                release.set()
                with ServeClient(port=node.port) as client:
                    assert client.stats()["admission"]["timeouts"] == 1
        finally:
            release.set()

    def test_controller_counters(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=0)
            async with controller.slot():
                assert controller.in_flight == 1
                with pytest.raises(QueueFullError):
                    async with controller.slot():
                        pass  # pragma: no cover
            stats = controller.stats()
            assert stats["admitted"] == 1
            assert stats["rejected"] == 1
            assert stats["completed"] == 1
            assert stats["in_flight"] == 0

        asyncio.run(scenario())


class TestServerMidPublish:
    def test_readers_never_blocked_by_publish(self, monkeypatch):
        """Reads land on the old snapshot while a publish is running and
        flip to the new snapshot only after it completes."""
        cdss = paper_cdss()
        with ServerThread(cdss, readers=2) as node:
            with ServeClient(port=node.port) as setup:
                statement = setup.prepare("ans(i, n) :- B(i, n)")["statement"]
                baseline = setup.execute(statement)
                setup.insert("B", (555, 666))

            # Park the exchange mid-flight on its first mutation of B.
            pauser = _ExchangePauser()
            live_b = cdss.system().db.get(output_name("B"))
            live_b.add_watcher(pauser)
            publish_result = {}

            def publish():
                with ServeClient(port=node.port, timeout=120) as writer:
                    publish_result.update(writer.publish())

            writer = threading.Thread(target=publish)
            writer.start()
            try:
                assert pauser.reached.wait(timeout=30)
                # The publish is parked; reads still complete, on the old
                # snapshot, without the new row.
                with ServeClient(port=node.port, timeout=30) as reader:
                    for _ in range(3):
                        mid = reader.execute(statement)
                        assert mid["pinned_version"] == (
                            baseline["pinned_version"]
                        )
                        assert [555, 666] not in mid["rows"]
            finally:
                pauser.resume()
                writer.join(timeout=120)
                live_b.remove_watcher(pauser)
            assert publish_result.get("ok")
            with ServeClient(port=node.port) as reader:
                after = reader.execute(statement)
                assert [555, 666] in after["rows"]
                assert after["pinned_version"] != baseline["pinned_version"]


# ---------------------------------------------------------------------------
# The CLI front door
# ---------------------------------------------------------------------------


class TestServeCLI:
    def test_subprocess_boot_query_shutdown(self, tmp_path):
        cdss = paper_cdss()
        spec_path = tmp_path / "spec.json"
        cdss.to_spec().save(spec_path)
        repo_root = Path(__file__).resolve().parent.parent
        import os

        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(spec_path),
                "--port",
                "0",
            ],
            cwd=repo_root,
            env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "repro-serve listening on " in banner
            url = banner.strip().rsplit(" ", 1)[-1]
            with ServeClient.from_url(url, timeout=60) as client:
                assert client.health()["ok"]
                result = client.query(
                    "ans(i, n) :- B(i, n)", order=["i", "n"], limit=1
                )
                assert result["rows"] == [[1, 3]]
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
