"""Tests for the bench harness, tiny-scale figure drivers, and the CLI."""

import pytest

from repro.bench import (
    ENGINE_DB2,
    ENGINE_TUKWILA,
    ablation_encoding,
    ablation_planner,
    fig4_deletion_alternatives,
    fig5_time_to_join,
    fig6_instance_size,
    fig7_insertions_string,
    fig8_insertions_integer,
    fig9_deletions,
    fig10_cycles,
    monotone_nondecreasing,
)
from repro.bench.harness import ExperimentResult
from repro.cli import EXPERIMENTS, build_parser, main


class TestHarness:
    def test_add_series_value(self):
        result = ExperimentResult("x", "desc")
        result.add({"n": 1, "kind": "a"}, seconds=0.5)
        result.add({"n": 2, "kind": "a"}, seconds=1.0)
        result.add({"n": 1, "kind": "b"}, seconds=9.0)
        assert result.series("n", "seconds", kind="a") == [(1, 0.5), (2, 1.0)]
        assert result.value("seconds", n=1, kind="b") == 9.0

    def test_value_requires_unique_match(self):
        result = ExperimentResult("x", "desc")
        result.add({"n": 1}, seconds=0.5)
        result.add({"n": 1}, seconds=0.7)
        with pytest.raises(KeyError):
            result.value("seconds", n=1)

    def test_table_rendering(self):
        result = ExperimentResult("x", "desc")
        result.add({"n": 1}, seconds=0.5)
        table = result.to_table()
        assert "x" in table and "seconds" in table and "0.5000" in table

    def test_empty_table(self):
        assert "no measurements" in ExperimentResult("x", "d").to_table()

    def test_monotone_nondecreasing(self):
        assert monotone_nondecreasing([1, 2, 3])
        assert monotone_nondecreasing([1, 0.95, 3], slack=0.1)
        assert not monotone_nondecreasing([1, 0.5, 3], slack=0.1)


class TestTinyDrivers:
    """Every figure driver runs end-to-end at a tiny scale.

    These are correctness tests for the drivers (params plumbed through,
    every expected measurement present); the benchmarks assert the
    performance *shapes* at a larger scale.
    """

    def test_fig4(self):
        result = fig4_deletion_alternatives(
            base_per_peer=12, ratios=(0.25, 0.75), peers=3
        )
        assert len(result.measurements) == 2 * 3
        for m in result.measurements:
            assert m.metrics["seconds"] >= 0

    def test_fig5(self):
        result = fig5_time_to_join(
            peer_counts=(2, 3), base_per_peer=8, datasets=("integer",),
            engines=(ENGINE_TUKWILA,),
        )
        assert len(result.measurements) == 2

    def test_fig6(self):
        result = fig6_instance_size(peer_counts=(2, 3), base_per_peer=8)
        assert len(result.measurements) == 4
        assert result.value("bytes", peers=2, dataset="string") > result.value(
            "bytes", peers=2, dataset="integer"
        )

    def test_fig7(self):
        result = fig7_insertions_string(
            peer_counts=(2,), base_per_peer=10, fractions=(0.1,),
            engines=(ENGINE_DB2,),
        )
        assert len(result.measurements) == 1

    def test_fig8(self):
        result = fig8_insertions_integer(
            peer_counts=(2,), base_per_peer=10, fractions=(0.1,),
            engines=(ENGINE_TUKWILA,),
        )
        assert len(result.measurements) == 1

    def test_fig9(self):
        result = fig9_deletions(
            peer_counts=(2,), base_per_peer=10, fractions=(0.1,),
            datasets=("integer",),
        )
        assert len(result.measurements) == 1

    def test_fig10(self):
        result = fig10_cycles(
            cycle_counts=(0, 2), base_per_peer=6, insert_per_peer=2,
            engines=(ENGINE_TUKWILA,),
        )
        tuples = [v for _, v in result.series("cycles", "tuples", engine=ENGINE_TUKWILA)]
        assert tuples[1] >= tuples[0]

    def test_ablation_encoding(self):
        result = ablation_encoding(peers=3, base_per_peer=8)
        assert len(result.measurements) == 2

    def test_ablation_planner(self):
        result = ablation_planner(peers=3, base_per_peer=12, small_update=1)
        assert len(result.measurements) == 4


class TestCLI:
    def test_parser_knows_all_experiments(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--scale", "0.5"])
            assert args.command == name
            assert args.scale == 0.5

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig10" in out

    def test_quickstart_command(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "Pv(B(3,2))" in out

    def test_single_experiment_command(self, capsys):
        assert main(["fig6", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "bytes" in out
