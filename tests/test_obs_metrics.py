"""Tests for the metrics registry (``repro.obs.metrics``).

Covers the instrument types (counter / gauge / histogram bucket edges),
family idempotence and kind-mismatch errors, thread-safety of labeled
counters under concurrent increments, weakref collector lifecycle
(pruning after gc), cross-owner sample merging, and the Prometheus text
exposition format.
"""

import gc
import threading

import pytest

from repro.obs import bootstrap_default_metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    KIND_COUNTER,
    KIND_GAUGE,
    MetricError,
    MetricsRegistry,
    Sample,
)


class TestInstruments:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == 7.0

    def test_histogram_bucket_edges(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        # Prometheus ``le`` semantics: boundaries are inclusive upper
        # bounds.  A value exactly on a boundary belongs to that bucket.
        histogram.observe(0.1)
        histogram.observe(1.0)
        histogram.observe(0.5)
        histogram.observe(5.0)  # above every boundary -> +Inf only
        histogram.observe(-1.0)  # below the first boundary -> first bucket
        boundaries, counts, total, count = histogram.labels().snapshot()
        assert boundaries == (0.1, 1.0)
        assert counts == (2, 2, 1)  # le=0.1: {0.1, -1}; le=1.0: {1.0, 0.5}
        assert count == 5
        assert total == pytest.approx(0.1 + 1.0 + 0.5 + 5.0 - 1.0)
        rendered = registry.render()
        assert 'h_seconds_bucket{le="0.1"} 2' in rendered
        assert 'h_seconds_bucket{le="1"} 4' in rendered  # cumulative
        assert 'h_seconds_bucket{le="+Inf"} 5' in rendered
        assert "h_seconds_count 5" in rendered

    def test_histogram_rejects_bad_boundaries(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h1", buckets=())
        with pytest.raises(MetricError):
            registry.histogram("h2", buckets=(1.0, 0.5))
        with pytest.raises(MetricError):
            registry.histogram("h3", buckets=(1.0, 1.0))

    def test_default_latency_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestFamilies:
    def test_idempotent_reregistration(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help text")
        again = registry.counter("x_total")
        assert again is first

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("route",))
        with pytest.raises(MetricError):
            registry.counter("x_total", labels=("other",))
        with pytest.raises(MetricError):
            registry.counter("x_total").labels("a", "b")

    def test_labeled_children_are_distinct_series(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labels=("route",))
        family.labels("/a").inc(3)
        family.labels("/b").inc()
        snapshot = registry.snapshot()
        assert snapshot["req_total"] == {"route=/a": 3.0, "route=/b": 1.0}

    def test_thread_safety_threads_by_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("work_total", labels=("worker",))
        threads, increments, labels = 8, 2000, ("a", "b", "c")
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for i in range(increments):
                family.labels(labels[i % len(labels)]).inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = registry.snapshot()["work_total"]
        total = threads * increments
        assert sum(snapshot.values()) == total
        # 2000 % 3 != 0, so the per-label split is uneven but exact.
        per_label = [
            sum(1 for i in range(increments) if labels[i % 3] == label)
            * threads
            for label in labels
        ]
        assert [
            snapshot[f"worker={label}"] for label in labels
        ] == per_label


class _Owner:
    """A collector owner with one plain-int counter (the layer idiom)."""

    def __init__(self) -> None:
        self.events = 0


def _collect(owner: _Owner):
    yield Sample("events_total", KIND_COUNTER, "", (), owner.events)


class TestCollectors:
    def test_collector_samples_appear(self):
        registry = MetricsRegistry()
        owner = _Owner()
        owner.events = 7
        registry.register(owner, _collect)
        assert registry.snapshot()["events_total"] == 7

    def test_collector_pruned_after_gc(self):
        registry = MetricsRegistry()
        owner = _Owner()
        registry.register(owner, _collect)
        assert "events_total" in registry.snapshot()
        del owner
        gc.collect()
        assert "events_total" not in registry.snapshot()
        assert not registry._collectors

    def test_samples_merge_across_owners(self):
        registry = MetricsRegistry()
        owners = [_Owner(), _Owner(), _Owner()]
        for index, owner in enumerate(owners):
            owner.events = index + 1
            registry.register(owner, _collect)
        assert registry.snapshot()["events_total"] == 6

    def test_broken_collector_does_not_kill_scrape(self):
        registry = MetricsRegistry()
        owner = _Owner()

        def broken(_owner):
            raise RuntimeError("boom")

        registry.register(owner, broken)
        registry.counter("ok_total").inc()
        assert registry.snapshot()["ok_total"] == 1

    def test_family_zero_merges_with_collector(self):
        # The bootstrap pattern: a pre-registered zero-valued family and
        # a live collector for the same series sum into one sample.
        registry = MetricsRegistry()
        registry.counter("events_total", "help")
        owner = _Owner()
        owner.events = 5
        registry.register(owner, _collect)
        assert registry.snapshot()["events_total"] == 5
        rendered = registry.render()
        assert rendered.count("# TYPE events_total counter") == 1
        assert "events_total 5" in rendered


class TestRender:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things done").inc(2)
        registry.gauge("b", labels=("site",)).labels('with"quote').set(1.5)
        text = registry.render()
        assert text.endswith("\n")
        assert "# HELP a_total things done" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 2" in text  # integral values render without .0
        assert 'b{site="with\\"quote"} 1.5' in text

    def test_bootstrap_families_cover_all_layers(self):
        registry = MetricsRegistry()
        bootstrap_default_metrics(registry)
        text = registry.render()
        for family in (
            "repro_engine_",
            "repro_parallel_",
            "repro_admission_",
            "repro_index_",
            "repro_wal_",
            "repro_serve_",
        ):
            assert family in text
