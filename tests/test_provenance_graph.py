"""Tests for the provenance graph, relational encoding, and equation systems."""

import pytest

from repro.datalog import SemiNaiveEngine
from repro.provenance import (
    BooleanSemiring,
    CountingSemiring,
    ENCODING_COMPOSITE,
    ENCODING_PER_RULE,
    ProvenanceEncoding,
    WhySemiring,
    build_provenance_graph,
)
from repro.provenance.expression import (
    EquationSystem,
    ZERO,
    mapping_app,
    product_of,
    ref,
    sum_of,
    token,
)
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping
from repro.storage import Database

G = RelationSchema("G", ("id", "can", "nam"))
B = RelationSchema("B", ("id", "nam"))
U = RelationSchema("U", ("nam", "can"))


def paper_internal() -> InternalSchema:
    return InternalSchema(
        (
            PeerSchema("PGUS", (G,)),
            PeerSchema("PBioSQL", (B,)),
            PeerSchema("PuBio", (U,)),
        ),
        (
            SchemaMapping.parse("m1", "G(i, c, n) -> B(i, n)"),
            SchemaMapping.parse("m3", "B(i, n) -> exists c . U(n, c)"),
            SchemaMapping.parse("m4", "B(i, c), U(n, c) -> B(i, n)"),
        ),
    )


def exchanged_db(style=ENCODING_COMPOSITE):
    internal = paper_internal()
    encoding = ProvenanceEncoding(internal, style=style)
    db = Database()
    encoding.setup_database(db)
    db["G__l"].insert((3, 5, 2))
    db["B__l"].insert((3, 5))
    db["U__l"].insert((2, 5))
    SemiNaiveEngine().run(encoding.full_program(), db)
    return internal, encoding, db


class TestEncoding:
    def test_composite_one_table_per_mapping(self):
        internal = paper_internal()
        encoding = ProvenanceEncoding(internal, style=ENCODING_COMPOSITE)
        assert len(encoding.tables) == 3
        m4 = encoding.tables_for_mapping("m4")[0]
        # Columns are the distinct LHS variables (i, c, n for m4).
        assert len(m4.variables) == 3

    def test_per_rule_tables(self):
        mapping = SchemaMapping.parse("m", "R(a, b) -> S(a, x), T(b, x)")
        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a", "b")),)),
                PeerSchema(
                    "P2",
                    (
                        RelationSchema("S", ("a", "x")),
                        RelationSchema("T", ("b", "x")),
                    ),
                ),
            ),
            (mapping,),
        )
        composite = ProvenanceEncoding(internal, style=ENCODING_COMPOSITE)
        per_rule = ProvenanceEncoding(internal, style=ENCODING_PER_RULE)
        assert len(composite.tables) == 1
        assert len(composite.tables[0].heads) == 2
        assert len(per_rule.tables) == 2
        assert all(len(t.heads) == 1 for t in per_rule.tables)

    def test_unknown_style_rejected(self):
        with pytest.raises(Exception):
            ProvenanceEncoding(paper_internal(), style="bogus")

    def test_both_styles_compute_same_instances(self):
        _, _, db1 = exchanged_db(ENCODING_COMPOSITE)
        _, _, db2 = exchanged_db(ENCODING_PER_RULE)
        for relation in ("G__o", "B__o", "U__o", "B__i", "U__i"):
            assert db1[relation].rows() == db2[relation].rows()

    def test_example9_provenance_tuples(self):
        """Example 9: PB1(3,5,2) and PB4(3,2,5) represent the two derivations
        of B(3,2) (variable order follows first occurrence in the tgd)."""
        internal, encoding, db = exchanged_db()
        m1_table = encoding.tables_for_mapping("m1")[0]
        m4_table = encoding.tables_for_mapping("m4")[0]
        assert (3, 5, 2) in db[m1_table.relation]
        # m4: B(i, c), U(n, c) -> B(i, n) with i=3, c=5, n=2.
        assert (3, 5, 2) in db[m4_table.relation]

    def test_support_probe_finds_derivations(self):
        internal, encoding, db = exchanged_db()
        table, head = encoding.targets_for_relation("B")[0]
        rows = table.supporting_rows(db, head, (3, 2))
        assert rows  # B(3,2) derivable via m1

    def test_support_probe_skolem_mismatch_returns_none(self):
        internal, encoding, db = exchanged_db()
        m3_table = encoding.tables_for_mapping("m3")[0]
        head = m3_table.heads[0]
        # A plain value cannot match the Skolem position.
        assert m3_table.support_probe(head, (2, "not-a-null")) is None

    def test_body_probe_matches_joined_tuple(self):
        internal, encoding, db = exchanged_db()
        m4_table = encoding.tables_for_mapping("m4")[0]
        # Deleting U(2,5) must locate the m4 instantiation that joined it.
        probe = m4_table.body_probe(1, (2, 5))
        assert probe is not None
        assert db[m4_table.relation].lookup(*probe) == {(3, 5, 2)}


class TestGraph:
    def test_graph_structure(self):
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        assert ("B", (3, 2)) in graph.tuple_nodes
        assert ("G", (3, 5, 2)) in graph.local_tokens
        incoming = graph.incoming[("B", (3, 2))]
        assert sorted(node.mapping for node in incoming) == ["m1", "m4"]

    def test_example6_provenance_expression(self):
        """Pv(B(3,2)) = m1(p3) + m4(p1 . p2) — Example 6."""
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        expr = graph.expression_for("B", (3, 2))
        expected = sum_of(
            [
                mapping_app("m1", token("G", (3, 5, 2))),
                mapping_app(
                    "m4", product_of([token("B", (3, 5)), token("U", (2, 5))])
                ),
            ]
        )
        assert expr == expected

    def test_example6_nested_expression(self):
        """Pv(U(2, c)) = m3(Pv(B(3,2))) = m3(m1(p3)) + m3(m4(p1 p2))."""
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        null_row = next(
            row for row in db["U__o"] if row[0] == 2 and row != (2, 5)
        )
        expr = graph.expression_for("U", null_row)
        inner = sum_of(
            [
                mapping_app("m1", token("G", (3, 5, 2))),
                mapping_app(
                    "m4", product_of([token("B", (3, 5)), token("U", (2, 5))])
                ),
            ]
        )
        assert expr == mapping_app("m3", inner)

    def test_unknown_tuple_has_zero_provenance(self):
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        assert graph.expression_for("B", (99, 99)) is ZERO

    def test_counting_evaluation(self):
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        counts = graph.evaluate(CountingSemiring())
        assert counts[("B", (3, 2))] == 2  # two derivations
        assert counts[("B", (3, 5))] == 1  # base only

    def test_why_evaluation(self):
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        values = graph.evaluate(
            WhySemiring(),
            token_value=lambda tok: frozenset({frozenset({tok})}),
        )
        assert values[("B", (3, 2))] == {
            frozenset({("G", (3, 5, 2))}),
            frozenset({("B", (3, 5)), ("U", (2, 5))}),
        }

    def test_grounded_matches_instance(self):
        internal, encoding, db = exchanged_db()
        graph = build_provenance_graph(db, encoding)
        grounded = graph.grounded()
        for relation in ("B", "U", "G"):
            for row in db[f"{relation}__o"]:
                assert (relation, row) in grounded

    def test_grounded_excludes_cyclic_support(self):
        """Two tuples supporting each other through mappings but with no
        base support must not be grounded (the deletion 'garbage')."""
        from repro.provenance.graph import MappingNode, ProvenanceGraph

        graph = ProvenanceGraph()
        a, b = ("R", (1,)), ("S", (1,))
        graph.add_mapping_node(
            MappingNode("ma", "P_ma", (1,), sources=(a,), targets=(b,))
        )
        graph.add_mapping_node(
            MappingNode("mb", "P_mb", (1,), sources=(b,), targets=(a,))
        )
        assert graph.grounded() == set()
        graph.add_local_token(a)
        assert graph.grounded() == {a, b}


class TestEquationSystems:
    def test_cyclic_system_boolean_solution(self):
        # x = token + m(y); y = m(x) — both true when the token is.
        equations = EquationSystem(
            {
                ("R", (1,)): sum_of(
                    [token("R", (1,)), mapping_app("m", ref("S", (1,)))]
                ),
                ("S", (1,)): mapping_app("m", ref("R", (1,))),
            }
        )
        values = equations.solve(BooleanSemiring(), lambda tok: True)
        assert values[("R", (1,))] is True
        assert values[("S", (1,))] is True
        values = equations.solve(BooleanSemiring(), lambda tok: False)
        assert values[("R", (1,))] is False

    def test_pure_cycle_solves_to_zero(self):
        # x = m(y); y = m(x): least fixpoint is zero (no base support).
        equations = EquationSystem(
            {
                ("R", (1,)): mapping_app("m", ref("S", (1,))),
                ("S", (1,)): mapping_app("m", ref("R", (1,))),
            }
        )
        values = equations.solve(BooleanSemiring(), lambda tok: True)
        assert values[("R", (1,))] is False

    def test_counting_saturates_on_cycles(self):
        # x = 1 + x in the counting semiring diverges to the saturation cap
        # (the paper's "infinitely many derivations", Section 3.2).
        equations = EquationSystem(
            {
                ("R", (1,)): sum_of(
                    [token("R", (1,)), ref("R", (1,))]
                ),
            }
        )
        semiring = CountingSemiring(saturation=64)
        values = equations.solve(semiring, lambda tok: 1)
        assert values[("R", (1,))] == 64

    def test_expand_depth_bound(self):
        equations = EquationSystem(
            {
                ("R", (1,)): sum_of(
                    [token("R", (1,)), mapping_app("m", ref("R", (1,)))]
                ),
            }
        )
        shallow = equations.expand(("R", (1,)), max_depth=1)
        deep = equations.expand(("R", (1,)), max_depth=3)
        assert shallow != deep
        # Depth-0 expansion cuts all references.
        cut = equations.expand(("R", (1,)), max_depth=0)
        assert cut == token("R", (1,))

    def test_expand_unknown_start_is_zero(self):
        equations = EquationSystem({})
        assert equations.expand(("R", (1,))) is ZERO
