"""Tests for stratification, planning, and the semi-naive engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    CostBasedPlanner,
    IncrementalUnsoundError,
    NaiveEngine,
    PreparedPlanner,
    SemiNaiveEngine,
    SkolemValue,
    StratificationError,
    parse_program,
    parse_rule,
    stratify,
)
from repro.datalog.plan import PlanError, RulePlan, check_plan
from repro.storage import Database


def run(prog_text, tables, planner=None, filters=None):
    db = Database()
    for name, (arity, rows) in tables.items():
        db.create(name, arity, rows)
    engine = SemiNaiveEngine(planner, head_filters=filters)
    result = engine.run(parse_program(prog_text), db)
    return db, result


class TestStratify:
    def test_single_stratum_positive_recursion(self):
        prog = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        )
        strat = stratify(prog)
        assert len(strat) == 1

    def test_negation_pushes_to_later_stratum(self):
        prog = parse_program(
            """
            A(x) :- E(x)
            B(x) :- E(x), not A(x)
            """
        )
        strat = stratify(prog)
        assert strat.predicate_stratum["A"] < strat.predicate_stratum["B"]

    def test_negation_over_edb_is_fine(self):
        prog = parse_program("A(x) :- E(x), not F(x)")
        assert len(stratify(prog)) == 1

    def test_unstratifiable_program_rejected(self):
        prog = parse_program(
            """
            A(x) :- E(x), not B(x)
            B(x) :- E(x), not A(x)
            """
        )
        with pytest.raises(StratificationError):
            stratify(prog)

    def test_negative_self_loop_rejected(self):
        prog = parse_program("A(x) :- A(y), not A(x), E(x)")
        with pytest.raises(StratificationError):
            stratify(prog)

    def test_chain_of_negations_many_strata(self):
        prog = parse_program(
            """
            A(x) :- E(x)
            B(x) :- E(x), not A(x)
            C(x) :- E(x), not B(x)
            """
        )
        strat = stratify(prog)
        assert strat.predicate_stratum["C"] == 2

    def test_empty_program(self):
        assert len(stratify(parse_program(""))) == 0


class TestPlans:
    def test_check_plan_rejects_non_permutation(self):
        rule = parse_rule("H(x) :- A(x), B(x)")
        with pytest.raises(PlanError):
            check_plan(rule, (0, 0))

    def test_check_plan_rejects_premature_negation(self):
        rule = parse_rule("H(x) :- A(x), not B(x)")
        with pytest.raises(PlanError):
            RulePlan(rule, (1, 0))
        RulePlan(rule, (0, 1))  # valid

    def test_planners_emit_valid_plans(self):
        rule = parse_rule("H(x, z) :- A(x, y), B(y, z), not C(x, z)")
        db = Database()
        for name in ("A", "B"):
            db.create(name, 2)
        db.create("C", 2)
        for planner in (PreparedPlanner(), CostBasedPlanner()):
            plan = planner.plan(rule, db, None)
            check_plan(rule, plan.order)
            plan_delta = planner.plan(rule, db, 1)
            assert plan_delta.order[0] == 1

    def test_prepared_planner_caches(self):
        rule = parse_rule("H(x) :- A(x)")
        db = Database()
        db.create("A", 1)
        planner = PreparedPlanner()
        planner.plan(rule, db, None)
        planner.plan(rule, db, None)
        assert planner.plans_built == 1
        planner.invalidate()
        planner.plan(rule, db, None)
        assert planner.plans_built == 2

    def test_cost_based_planner_prefers_selective_atom(self):
        # B is tiny, A is huge: the cost-based planner should start with B.
        rule = parse_rule("H(x, y) :- A(x, y), B(y)")
        db = Database()
        db.create("A", 2, [(i, i % 100) for i in range(1000)])
        db.create("B", 1, [(1,)])
        plan = CostBasedPlanner().plan(rule, db, None)
        assert plan.order[0] == 1


class TestFixpoint:
    def test_transitive_closure(self):
        db, _ = run(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """,
            {"E": (2, [(1, 2), (2, 3), (3, 4)])},
        )
        assert db["T"].rows() == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)
        }

    def test_all_planners_and_engines_agree(self):
        prog_text = """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            S(x) :- T(x, x)
            Q(x) :- V(x), not S(x)
        """
        edges = [(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]
        results = []
        for engine_cls in (SemiNaiveEngine, NaiveEngine):
            for planner_cls in (PreparedPlanner, CostBasedPlanner):
                db = Database()
                db.create("E", 2, edges)
                db.create("V", 1, [(i,) for i in range(1, 6)])
                engine_cls(planner_cls()).run(parse_program(prog_text), db)
                results.append(
                    (db["T"].rows(), db["S"].rows(), db["Q"].rows())
                )
        assert all(r == results[0] for r in results)
        assert results[0][1] == {(1,), (2,), (3,), (4,)}
        assert results[0][2] == {(5,)}

    def test_skolem_head_creates_labeled_nulls(self):
        db, _ = run(
            "U(n, f(n)) :- B(i, n)",
            {"B": (2, [(3, 5), (1, 3)])},
        )
        assert (5, SkolemValue("f", (5,))) in db["U"]
        assert (3, SkolemValue("f", (3,))) in db["U"]

    def test_skolem_values_join_on_equality(self):
        # Joining on labeled nulls must work (Section 2.1: "queries can join
        # on their equality").
        db, _ = run(
            """
            U(n, f(n)) :- B(n)
            Same(x, y) :- U(x, z), U(y, z)
            """,
            {"B": (1, [(1,), (2,)])},
        )
        assert db["Same"].rows() == {(1, 1), (2, 2)}

    def test_skolem_recursion_terminates_for_weakly_acyclic_shape(self):
        # f is applied to data from B only (not recursively), so the fixpoint
        # is finite even though U feeds back into V.
        db, _ = run(
            """
            U(n, f(n)) :- B(n)
            V(c) :- U(n, c)
            """,
            {"B": (1, [(1,)])},
        )
        assert len(db["U"]) == 1
        assert len(db["V"]) == 1

    def test_constants_in_rule_bodies(self):
        db, _ = run(
            "H(x) :- E(x, 2)",
            {"E": (2, [(1, 2), (5, 3)])},
        )
        assert db["H"].rows() == {(1,)}

    def test_repeated_variables_in_body(self):
        db, _ = run(
            "H(x) :- E(x, x)",
            {"E": (2, [(1, 1), (1, 2)])},
        )
        assert db["H"].rows() == {(1,)}

    def test_head_filters_reject_derivations(self):
        prog = parse_program("")
        db = Database()
        db.create("E", 2, [(1, 2), (3, 4)])
        rule = parse_rule("H(x, y) :- E(x, y)", label="m1")
        engine = SemiNaiveEngine(
            head_filters={"m1": lambda row: row[0] != 3}
        )
        engine.run(prog.extend([rule]), db)
        assert db["H"].rows() == {(1, 2)}

    def test_head_filter_applies_transitively(self):
        # Rejecting an intermediate tuple stops everything derived from it.
        rules = [
            parse_rule("A(x) :- E(x)", label="m1"),
            parse_rule("B(x) :- A(x)", label="m2"),
        ]
        db = Database()
        db.create("E", 1, [(1,), (2,)])
        engine = SemiNaiveEngine(head_filters={"m1": lambda row: row[0] != 2})
        from repro.datalog.ast import Program

        engine.run(Program(tuple(rules)), db)
        assert db["A"].rows() == {(1,)}
        assert db["B"].rows() == {(1,)}

    def test_idb_relations_created_on_demand(self):
        db, _ = run("H(x) :- E(x)", {"E": (1, [(1,)])})
        assert "H" in db

    def test_mutually_recursive_predicates(self):
        db, _ = run(
            """
            Even(y) :- Succ(x, y), Odd(x)
            Odd(y) :- Succ(x, y), Even(x)
            Even(0) :- Zero(0)
            """,
            {
                "Succ": (2, [(i, i + 1) for i in range(6)]),
                "Zero": (1, [(0,)]),
            },
        )
        assert db["Even"].rows() == {(0,), (2,), (4,), (6,)}
        assert db["Odd"].rows() == {(1,), (3,), (5,)}

    def test_arity_mismatch_rejected(self):
        with pytest.raises(Exception):
            run("H(x) :- E(x), E(x, x)", {"E": (1, [(1,)])})


class TestIncrementalInsertions:
    def _fixture(self):
        prog = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, z) :- T(x, y), E(y, z)
            """
        )
        db = Database()
        db.create("E", 2, [(1, 2), (2, 3)])
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        return prog, db, engine

    def test_incremental_matches_recompute(self):
        prog, db, engine = self._fixture()
        db["E"].insert((3, 4))
        engine.run_insertions(prog, db, {"E": {(3, 4)}})

        fresh = Database()
        fresh.create("E", 2, [(1, 2), (2, 3), (3, 4)])
        SemiNaiveEngine().run(prog, fresh)
        assert db["T"].rows() == fresh["T"].rows()

    def test_incremental_returns_only_new_rows(self):
        prog, db, engine = self._fixture()
        db["E"].insert((3, 4))
        new = engine.run_insertions(prog, db, {"E": {(3, 4)}})
        assert new["T"] == {(3, 4), (2, 4), (1, 4)}

    def test_noop_insertion(self):
        prog, db, engine = self._fixture()
        new = engine.run_insertions(prog, db, {})
        assert new == {}

    def test_insertion_through_negation_rejected(self):
        prog = parse_program(
            """
            A(x) :- E(x)
            B(x) :- V(x), not A(x)
            """
        )
        db = Database()
        db.create("E", 1)
        db.create("V", 1)
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        db["E"].insert((1,))
        with pytest.raises(IncrementalUnsoundError):
            engine.run_insertions(prog, db, {"E": {(1,)}})

    def test_insertion_with_negation_on_untouched_relation_ok(self):
        prog = parse_program(
            """
            A(x) :- E(x), not R(x)
            B(x) :- A(x)
            """
        )
        db = Database()
        db.create("E", 1, [(1,)])
        db.create("R", 1, [(2,)])
        engine = SemiNaiveEngine()
        engine.run(prog, db)
        db["E"].insert((2,))
        db["E"].insert((3,))
        new = engine.run_insertions(prog, db, {"E": {(2,), (3,)}})
        assert new["A"] == {(3,)}  # (2,) blocked by R
        assert new["B"] == {(3,)}


@st.composite
def random_edges(draw):
    n = draw(st.integers(2, 7))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n), st.integers(0, n)), max_size=20
        )
    )
    return edges


@settings(max_examples=40, deadline=None)
@given(edges=random_edges(), extra=random_edges())
def test_property_incremental_insertion_equals_recompute(edges, extra):
    """Property: semi-naive incremental insertion reaches the same fixpoint
    as recomputation from scratch, for random graphs and random insertions."""
    prog = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        """
    )
    db = Database()
    db.create("E", 2, edges)
    engine = SemiNaiveEngine()
    engine.run(prog, db)
    new_edges = extra - edges
    for edge in new_edges:
        db["E"].insert(edge)
    engine.run_insertions(prog, db, {"E": new_edges})

    fresh = Database()
    fresh.create("E", 2, edges | extra)
    SemiNaiveEngine().run(prog, fresh)
    assert db["T"].rows() == fresh["T"].rows()


@settings(max_examples=30, deadline=None)
@given(edges=random_edges())
def test_property_naive_equals_seminaive_with_negation(edges):
    prog = parse_program(
        """
        T(x, y) :- E(x, y)
        T(x, z) :- T(x, y), E(y, z)
        NotLoop(x) :- V(x), not Loop(x)
        Loop(x) :- T(x, x)
        """
    )
    nodes = {x for e in edges for x in e}
    db1 = Database()
    db1.create("E", 2, edges)
    db1.create("V", 1, [(x,) for x in nodes])
    SemiNaiveEngine().run(prog, db1)

    db2 = Database()
    db2.create("E", 2, edges)
    db2.create("V", 1, [(x,) for x in nodes])
    NaiveEngine().run(prog, db2)

    assert db1["T"].rows() == db2["T"].rows()
    assert db1["NotLoop"].rows() == db2["NotLoop"].rows()
