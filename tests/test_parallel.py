"""Tests for the shard-parallel evaluation subsystem (`repro.parallel`).

The load-bearing property: a system evaluated with ``workers > 1`` must
be *indistinguishable* from the sequential one — identical certain
answers, identical provenance tables (the full database state is
compared, which subsumes the provenance graph), and identical deletion
results under both PropagateDelete and DRed — while the engine counters
prove the parallel path actually ran.
"""

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS
from repro.core import STRATEGY_DRED, STRATEGY_INCREMENTAL, STRATEGY_UNIFIED
from repro.datalog import (
    NaiveEngine,
    PreparedPlanner,
    SemiNaiveEngine,
    parse_program,
    parse_rule,
)
from repro.datalog.plan import compile_plan
from repro.parallel import (
    ShardPlanner,
    WorkerPool,
    WorkerPoolError,
    first_join_key,
    resolve_workers,
)
from repro.storage import Database
from repro.storage.replication import apply_ops, build_replica

TC_PROGRAM = """
    T(x, y) :- E(x, y)
    T(x, z) :- T(x, y), E(y, z)
"""


def make_db(tables):
    db = Database()
    for name, (arity, rows) in tables.items():
        db.create(name, arity, rows)
    return db


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def plan_for(self, text, delta_index):
        rule = parse_rule(text)
        return PreparedPlanner().plan(rule, Database(), delta_index)

    def test_hashes_on_first_join_key(self):
        # Δ on T(x, y); the next probe is E(y, z) on y -> shard on the
        # Δ-atom position of y (1).
        plan = self.plan_for("T2(x, z) :- T(x, y), E(y, z)", 0)
        assert first_join_key(plan, 0) == 1

    def test_join_key_on_delta_second_occurrence(self):
        plan = self.plan_for("A(x) :- E(x, y), F(y)", 1)
        # Δ on F(y): probe E(x, y) binds y at Δ-position 0.
        assert first_join_key(plan, 1) == 0

    def test_constant_bound_atom_falls_back_to_round_robin(self):
        plan = self.plan_for("A(x) :- E(x, y), F(7)", 1)
        # Δ atom F(7) binds no variables at all.
        assert first_join_key(plan, 1) is None

    def test_disconnected_join_falls_back_to_round_robin(self):
        plan = self.plan_for("A(x, u) :- E(x, y), F(u, v)", 0)
        # F probes no Δ-bound variable (cross product).
        assert first_join_key(plan, 0) is None

    def test_no_delta_means_round_robin(self):
        plan = self.plan_for("A(x) :- E(x, y)", None)
        assert first_join_key(plan, None) is None

    def test_sharding_partitions_every_row_exactly_once(self):
        plan = self.plan_for("T2(x, z) :- T(x, y), E(y, z)", 0)
        rows = [(i, i % 7) for i in range(100)]
        for sharder in (ShardPlanner(1), ShardPlanner(3), ShardPlanner(8)):
            shards = sharder.shard(plan, 0, rows)
            assert len(shards) == sharder.workers
            flat = [row for shard in shards for row in shard]
            assert sorted(flat) == sorted(rows)

    def test_equal_join_keys_land_on_the_same_shard(self):
        plan = self.plan_for("T2(x, z) :- T(x, y), E(y, z)", 0)
        rows = [(i, i % 5) for i in range(50)]
        shards = ShardPlanner(4).shard(plan, 0, rows)
        owner = {}
        for index, shard in enumerate(shards):
            for row in shard:
                assert owner.setdefault(row[1], index) == index


# ---------------------------------------------------------------------------
# Plan shipping
# ---------------------------------------------------------------------------


class TestPlanPickling:
    def test_ruleplan_pickles_without_compiled_state(self):
        rule = parse_rule("A(x, z) :- E(x, y), not F(x, y), E(y, z)")
        plan = PreparedPlanner().plan(rule, Database(), 0)
        compile_plan(plan)  # stash the closure-laden compiled template
        copy = pickle.loads(pickle.dumps(plan))
        assert copy.rule == plan.rule
        assert copy.order == plan.order
        assert copy.params == plan.params
        assert not hasattr(copy, "_compiled")

    def test_shipped_plan_evaluates_identically(self):
        db = make_db({"E": (2, [(1, 2), (2, 3), (3, 4)])})
        rule = parse_rule("A(x, z) :- E(x, y), E(y, z)")
        plan = PreparedPlanner().plan(rule, db, None)
        from repro.datalog.plan import run_plan

        def resolve(_index, atom):
            return db[atom.predicate]

        copy = pickle.loads(pickle.dumps(plan))
        assert sorted(run_plan(copy, resolve)) == sorted(
            run_plan(plan, resolve)
        )


# ---------------------------------------------------------------------------
# Replication: snapshot + change-feed delta shipping
# ---------------------------------------------------------------------------


class TestReplication:
    def test_snapshot_then_delta_replay_matches_source(self):
        db = make_db({"E": (2, [(1, 2)]), "F": (1, [(9,)])})
        replica = build_replica(db.export_snapshot())
        feed = db.changefeed()
        db["E"].insert_many([(2, 3), (3, 4)])
        db["F"].delete((9,))
        db.create("G", 1).insert((5,))
        db["E"].delete_many([(1, 2)])
        apply_ops(replica, feed.drain())
        assert replica.snapshot() == db.snapshot()
        feed.close()

    def test_clear_and_recreate_replay_in_order(self):
        db = make_db({"E": (1, [(1,), (2,)])})
        replica = build_replica(db.export_snapshot())
        feed = db.changefeed()
        db["E"].clear()
        db["E"].insert((7,))
        db.drop("E")
        db.create("E", 1).insert((8,))
        apply_ops(replica, feed.drain())
        assert replica.snapshot() == {"E": frozenset({(8,)})}
        feed.close()

    def test_closed_feed_stops_recording(self):
        db = make_db({"E": (1, [])})
        feed = db.changefeed()
        db["E"].insert((1,))
        assert len(feed) == 1
        feed.close()
        db["E"].insert((2,))
        assert len(feed) == 0

    def test_feed_records_replace_contents_turnover(self):
        db = make_db({"E": (1, [(1,), (2,)])})
        replica = build_replica(db.export_snapshot())
        feed = db.changefeed()
        db["E"].replace_contents([(3,), (4,)])  # complete turnover path
        apply_ops(replica, feed.drain())
        assert replica["E"].rows() == db["E"].rows()
        feed.close()


# ---------------------------------------------------------------------------
# Engine-level agreement
# ---------------------------------------------------------------------------


class TestEngineParallel:
    def run_tc(self, workers, edges):
        db = make_db({"E": (2, edges)})
        engine = SemiNaiveEngine(workers=workers)
        result = engine.run(parse_program(TC_PROGRAM), db)
        rows = db["T"].rows()
        engine.close()
        return rows, result

    def test_full_evaluation_matches_sequential(self):
        edges = [(i, i + 1) for i in range(40)] + [(5, 2), (30, 7)]
        sequential, _ = self.run_tc(1, edges)
        parallel, result = self.run_tc(3, edges)
        assert parallel == sequential
        assert result.parallel_rounds > 0

    def test_incremental_insertions_match_sequential(self):
        edges = [(i, i + 1) for i in range(20)]
        outcomes = []
        for workers in (1, 2):
            db = make_db({"E": (2, edges)})
            engine = SemiNaiveEngine(workers=workers)
            program = parse_program(TC_PROGRAM)
            engine.run(program, db)
            db["E"].insert((20, 21))
            derived = engine.run_insertions(program, db, {"E": {(20, 21)}})
            outcomes.append((db["T"].rows(), derived))
            engine.close()
        assert outcomes[0] == outcomes[1]

    def test_agrees_with_naive_reference(self):
        program = parse_program(
            """
            A(x) :- E(x, y)
            B(y) :- E(x, y)
            R(x) :- A(x), not B(x)
            """
        )
        edges = [(1, 2), (2, 3), (3, 1), (4, 5)]
        naive_db = make_db({"E": (2, edges)})
        NaiveEngine().run(program, naive_db)
        parallel_db = make_db({"E": (2, edges)})
        engine = SemiNaiveEngine(workers=2)
        engine.run(program, parallel_db)
        engine.close()
        assert parallel_db.snapshot() == naive_db.snapshot()

    def test_pool_failure_falls_back_to_sequential(self):
        db = make_db({"E": (2, [(i, i + 1) for i in range(15)])})
        engine = SemiNaiveEngine(workers=2)
        executor = engine._executor()
        assert executor is not None
        # Kill the pool out from under the engine: the next parallel round
        # errors, is re-run sequentially, and the engine stays sequential.
        executor.pool.close()
        with pytest.warns(RuntimeWarning, match="parallel evaluation"):
            engine.run(parse_program(TC_PROGRAM), db)
        assert len(db["T"]) == 15 * 16 // 2
        assert engine._executor() is None  # permanently disabled
        # A second run works without touching the pool at all.
        db["E"].insert((15, 16))
        engine.run_insertions(
            parse_program(TC_PROGRAM), db, {"E": {(15, 16)}}
        )
        engine.close()

    def test_worker_count_resolution(self, monkeypatch):
        assert resolve_workers(3) == 3
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2
        assert SemiNaiveEngine(workers=None).workers == 2
        assert SemiNaiveEngine().workers == 1  # explicit default stays 1
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(WorkerPoolError):
            resolve_workers(None)
        with pytest.raises(WorkerPoolError):
            resolve_workers(0)

    def test_pool_ping_and_close_idempotent(self):
        pool = WorkerPool(2)
        assert pool.ping() == [0, 0]
        pool.close()
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.start()


# ---------------------------------------------------------------------------
# CDSS-level agreement (the acceptance property)
# ---------------------------------------------------------------------------


def build_cdss(strategy, workers, trust_threshold=None):
    cdss = CDSS(strategy=strategy, workers=workers)
    cdss.add_peer("P1", {"A": ("k", "v")})
    cdss.add_peer("P2", {"B2": ("k", "v")})
    cdss.add_peer("P3", {"C": ("k",)})
    cdss.add_mapping("mab", "A(k, v) -> B2(k, v)")
    cdss.add_mapping("mbc", "B2(k, v) -> C(k)")
    cdss.add_mapping("mca", "C(k) -> exists v . A(k, v)")  # cycle + nulls
    if trust_threshold is not None:
        cdss.peer("P2").trust().condition(
            "mab", lambda row: row[0] < trust_threshold, "threshold"
        )
    return cdss


@st.composite
def lifecycle(draw):
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        inserts = draw(
            st.sets(
                st.tuples(st.integers(0, 9), st.integers(0, 3)), max_size=5
            )
        )
        deletes = draw(st.sets(st.integers(0, 9), max_size=3))
        rejections = draw(st.sets(st.integers(0, 9), max_size=2))
        batches.append((inserts, deletes, rejections))
    threshold = draw(st.one_of(st.none(), st.integers(2, 8)))
    return batches, threshold


def apply_batch(cdss, batch):
    from repro.datalog.ast import tuple_has_labeled_null

    inserts, deletes, rejections = batch
    p1, p3 = cdss.peer("P1"), cdss.peer("P3")
    with p1.batch() as tx:
        for key, value in inserts:
            tx.insert("A", (key, value))
    for key in deletes:
        for row in [r for r in p1.relation("A") if r[0] == key]:
            if not tuple_has_labeled_null(row):
                p1.delete("A", row)
    for key in rejections:
        p3.delete("C", (key,))
    cdss.update_exchange()


class TestCDSSParallelAgreement:
    @settings(max_examples=8, deadline=None)
    @given(data=lifecycle())
    def test_property_parallel_state_identical_incremental(self, data):
        """workers=2 produces byte-identical state (certain answers,
        provenance tables, deletion results) to workers=1 under the
        incremental strategy, and the parallel path actually ran."""
        batches, threshold = data
        snapshots = {}
        for workers in (1, 2):
            cdss = build_cdss(STRATEGY_INCREMENTAL, workers, threshold)
            for batch in batches:
                apply_batch(cdss, batch)
            system = cdss.system()
            snapshots[workers] = system.db.snapshot()
            if workers == 2 and any(b[0] for b in batches):
                assert system.engine.stats.parallel_rounds > 0
            system.close()
        assert snapshots[1] == snapshots[2]

    @settings(max_examples=6, deadline=None)
    @given(data=lifecycle())
    def test_property_parallel_state_identical_dred(self, data):
        """DRed deletion results agree between workers=1 and workers=2."""
        batches, threshold = data
        snapshots = {}
        for workers in (1, 2):
            cdss = build_cdss(STRATEGY_DRED, workers, threshold)
            for batch in batches:
                apply_batch(cdss, batch)
            snapshots[workers] = cdss.system().db.snapshot()
            cdss.system().close()
        assert snapshots[1] == snapshots[2]

    def test_certain_answers_and_provenance_match(self):
        """The running example: answers and provenance expressions are
        identical under parallel evaluation."""
        results = {}
        for workers in (1, 2):
            cdss = CDSS("bio", workers=workers)
            cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
            cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
            cdss.add_peer("PuBio", {"U": ("nam", "can")})
            cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
            cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
            cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
            cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
            with cdss.batch() as tx:
                tx.insert("G", (1, 2, 3))
                tx.insert("G", (3, 5, 2))
                tx.insert("B", (3, 5))
                tx.insert("U", (2, 5))
            cdss.update_exchange()
            results[workers] = (
                cdss.relation("B").certain().to_rows(),
                cdss.query("ans(x, y) :- U(x, z), U(y, z)"),
                repr(cdss.relation("B").provenance((3, 2))),
                cdss.system().db.snapshot(),
            )
            cdss.system().close()
        assert results[1] == results[2]

    def test_consistency_under_parallel_evaluation(self):
        cdss = build_cdss(STRATEGY_INCREMENTAL, 2)
        with cdss.peer("P1").batch() as tx:
            for i in range(25):
                tx.insert("A", (i, i % 3))
        cdss.update_exchange()
        system = cdss.system()
        assert system.engine.stats.parallel_rounds > 0
        assert system.is_consistent()
        system.close()

    def test_large_deletion_batch_uses_parallel_semijoins(self):
        """A deletion batch big enough to clear PARALLEL_DELETION_MIN_ROWS
        runs its retraction semijoins through the worker pool and still
        lands on the exact sequential state."""
        snapshots = {}
        deletion_rounds = {}
        for workers in (1, 2):
            cdss = build_cdss(STRATEGY_UNIFIED, workers)
            with cdss.peer("P1").batch() as tx:
                for i in range(400):
                    tx.insert("A", (i, i % 7))
            cdss.update_exchange()
            system = cdss.system()
            before = system.engine.stats.parallel_rounds
            with cdss.peer("P1").batch() as tx:
                for i in range(300):
                    tx.delete("A", (i, i % 7))
            cdss.update_exchange()
            deletion_rounds[workers] = system.engine.stats.parallel_rounds - before
            assert system.is_consistent()
            snapshots[workers] = system.db.snapshot()
            system.close()
        assert snapshots[1] == snapshots[2]
        assert deletion_rounds[1] == 0
        assert deletion_rounds[2] > 0

    def test_recompute_strategy_parallel(self):
        cdss = build_cdss(STRATEGY_INCREMENTAL, 2)
        with cdss.peer("P1").batch() as tx:
            for i in range(10):
                tx.insert("A", (i, 0))
        cdss.update_exchange()
        sequential = build_cdss(STRATEGY_INCREMENTAL, 1)
        with sequential.peer("P1").batch() as tx:
            for i in range(10):
                tx.insert("A", (i, 0))
        sequential.update_exchange()
        cdss.recompute()
        assert cdss.system().db.snapshot() == sequential.system().db.snapshot()
        cdss.system().close()


# ---------------------------------------------------------------------------
# Spawn start method (non-fork platforms) + spec/CLI plumbing
# ---------------------------------------------------------------------------


class TestSpawnAndPlumbing:
    def test_spawn_start_method_smoke(self):
        """The whole protocol is picklable: a spawn-context pool produces
        the same state as sequential evaluation."""
        snapshots = {}
        for workers, start_method in ((1, None), (2, "spawn")):
            cdss = CDSS(
                "spawned", workers=workers, start_method=start_method
            )
            cdss.add_peer("P1", {"R": ("a", "b")})
            cdss.add_peer("P2", {"S": ("a", "b")})
            cdss.add_mapping("m", "R(x, y) -> S(x, y)")
            with cdss.peer("P1").batch() as tx:
                for i in range(8):
                    tx.insert("R", (i, i + 1))
            cdss.update_exchange()
            system = cdss.system()
            snapshots[workers] = system.db.snapshot()
            if workers == 2:
                assert system.engine.stats.parallel_rounds > 0
            system.close()
        assert snapshots[1] == snapshots[2]

    def test_spec_workers_round_trip(self):
        cdss = CDSS("w", workers=4)
        cdss.add_peer("P1", {"R": ("a",)})
        spec = cdss.to_spec()
        assert spec.workers == 4
        document = spec.to_dict()
        assert document["workers"] == 4
        from repro.api.spec import SystemSpec

        rebuilt = SystemSpec.from_dict(document)
        assert rebuilt.workers == 4
        assert CDSS.from_spec(rebuilt).workers == 4

    def test_spec_rejects_bad_workers(self):
        from repro.api.spec import SpecError, SystemSpec

        with pytest.raises(SpecError):
            SystemSpec(workers=0)
        with pytest.raises(SpecError):
            SystemSpec(workers="two")  # type: ignore[arg-type]

    def test_old_spec_documents_default_to_sequential(self):
        from repro.api.spec import SystemSpec

        document = SystemSpec(name="legacy").to_dict()
        del document["workers"]
        assert SystemSpec.from_dict(document).workers == 1

    def test_cli_workers_override(self, tmp_path, capsys):
        from repro.cli import main

        cdss = CDSS("cli")
        cdss.add_peer("P1", {"R": ("a",)})
        cdss.add_peer("P2", {"S": ("a",)})
        cdss.add_mapping("m", "R(x) -> S(x)")
        cdss.peer("P1").insert("R", (1,))
        path = tmp_path / "spec.json"
        cdss.to_spec().save(path)
        assert main(["run", str(path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "S: [(1,)]" in out

    def test_repro_workers_env_reaches_cdss(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        cdss = CDSS("env")
        assert cdss.workers == 2
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert CDSS("env2").workers == 1


class TestPlanRegistryCap:
    def test_statistics_driven_planner_does_not_grow_registry_unbounded(
        self, monkeypatch
    ):
        """CostBasedPlanner re-plans every round (its cache token is the
        database version), minting fresh plan objects; the pool registry
        must reset at the cap instead of pinning them all forever."""
        import repro.parallel.pool as pool_module
        from repro.datalog import CostBasedPlanner

        monkeypatch.setattr(pool_module, "_PLAN_REGISTRY_LIMIT", 8)
        edges = [(i, i + 1) for i in range(30)]
        sequential = make_db({"E": (2, edges)})
        SemiNaiveEngine(CostBasedPlanner()).run(
            parse_program(TC_PROGRAM), sequential
        )
        parallel = make_db({"E": (2, edges)})
        engine = SemiNaiveEngine(CostBasedPlanner(), workers=2)
        result = engine.run(parse_program(TC_PROGRAM), parallel)
        executor = engine._executor()
        assert executor is not None and executor.available
        assert result.parallel_rounds > 0
        assert executor.pool.plan_count <= 8 + 2  # one round's plans past cap
        engine.close()
        assert parallel.snapshot() == sequential.snapshot()
