"""Tests for database checkpointing (the auxiliary-storage persistence)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import SkolemValue
from repro.storage import (
    Database,
    KeyValueStore,
    SQLiteStore,
    StorageError,
    checkpoint,
    checkpoint_equal,
    restore,
)

#: Both sides of the storage-backend protocol; checkpoints must behave
#: identically over each.
BACKENDS = [KeyValueStore, SQLiteStore]


class TestCheckpointRestore:
    def test_roundtrip(self):
        db = Database()
        db.create("R", 2, [(1, "a"), (2, "b")])
        db.create("S", 1, [(9,)])
        store = checkpoint(db)
        loaded = restore(store)
        assert loaded.snapshot() == db.snapshot()

    def test_labeled_nulls_survive(self):
        db = Database()
        null = SkolemValue("f_m3_c", (5,))
        db.create("U", 2, [(5, null)])
        loaded = restore(checkpoint(db))
        assert (5, null) in loaded["U"]

    def test_checkpoint_overwrites_stale_buckets(self):
        db1 = Database()
        db1.create("R", 1, [(1,)])
        db1.create("OLD", 1, [(9,)])
        store = checkpoint(db1)
        db2 = Database()
        db2.create("R", 1, [(2,)])
        checkpoint(db2, store)
        loaded = restore(store)
        assert loaded.relation_names() == ("R",)
        assert loaded["R"].rows() == {(2,)}

    def test_restore_into_existing_database(self):
        db = Database()
        db.create("R", 1, [(1,)])
        store = checkpoint(db)
        target = Database()
        target.create("R", 1, [(5,)])  # stale contents are replaced
        restore(store, into=target)
        assert target["R"].rows() == {(1,)}

    def test_restore_drops_relations_absent_from_catalog(self):
        """The restore-side twin of the stale-bucket wipe: relations the
        target holds that the checkpoint does not must go away."""
        db = Database()
        db.create("R", 1, [(1,)])
        store = checkpoint(db)
        target = Database()
        target.create("R", 1, [(5,)])
        target.create("GONE", 2, [(1, 2)])
        restored = restore(store, into=target)
        assert restored is target
        assert target.relation_names() == ("R",)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_indexes_survive_roundtrip(self, backend):
        db = Database(index_policy="eager")
        db.create("R", 3, [(1, 2, 3), (4, 5, 6)])
        db["R"].ensure_index((1,))
        db["R"].ensure_index((0, 2))
        db.create("S", 1, [(9,)])  # no indexes
        loaded = restore(checkpoint(db, backend()))
        assert loaded.index_policy == "eager"
        assert set(loaded["R"].indexed_columns()) == {(1,), (0, 2)}
        assert set(loaded["S"].indexed_columns()) == set()

    @pytest.mark.parametrize("policy", ["eager", "deferred"])
    def test_index_policy_survives_roundtrip(self, policy):
        db = Database(index_policy=policy)
        db.create("R", 1, [(1,)])
        assert restore(checkpoint(db)).index_policy == policy

    def test_restore_into_keeps_target_policy(self):
        db = Database(index_policy="eager")
        db.create("R", 1, [(1,)])
        store = checkpoint(db)
        target = Database(index_policy="deferred")
        restore(store, into=target)
        assert target.index_policy == "deferred"

    def test_restore_empty_store_raises(self):
        with pytest.raises(StorageError):
            restore(KeyValueStore())

    def test_checkpoint_equal(self):
        db = Database()
        db.create("R", 1, [(1,)])
        store = checkpoint(db)
        assert checkpoint_equal(db, store)
        db.insert("R", (2,))
        assert not checkpoint_equal(db, store)

    def test_exchange_state_roundtrip(self):
        """Checkpoint a full update-exchange state (with provenance tables
        and labeled nulls) and resume incrementally from the restore."""
        from repro.core.editlog import PublishDelta
        from repro.core.exchange import ExchangeSystem
        from repro.schema import (
            InternalSchema,
            PeerSchema,
            RelationSchema,
            SchemaMapping,
        )

        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("B", ("i", "n")),)),
                PeerSchema("P2", (RelationSchema("U", ("n", "c")),)),
            ),
            (SchemaMapping.parse("m3", "B(i, n) -> exists c . U(n, c)"),),
        )
        system = ExchangeSystem(internal)
        system.db["B__l"].insert((3, 5))
        system.recompute()
        store = checkpoint(system.db)

        resumed = ExchangeSystem(internal)
        restore(store, into=resumed.db)
        assert resumed.is_consistent()
        delta = PublishDelta(local_inserts={"B": {(4, 5)}})
        resumed.apply_delta(delta)
        assert resumed.is_consistent()
        assert len(resumed.instance("U")) == 1  # same null, shared by n=5


#: Column values a CDSS relation can actually hold: scalars plus labeled
#: nulls whose arguments may themselves nest.
_values = st.recursive(
    st.one_of(
        st.integers(-5, 5),
        st.text(max_size=3),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.builds(
        SkolemValue,
        st.sampled_from(["f_m1_c", "f_m3_x"]),
        st.tuples(children),
    ),
    max_leaves=4,
)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=30, deadline=None)
@given(
    rows=st.dictionaries(
        st.sampled_from(["R", "S", "T"]),
        st.frozensets(st.tuples(_values, _values), max_size=8),
        max_size=3,
    )
)
def test_property_checkpoint_roundtrip(backend, rows):
    db = Database()
    for name, contents in rows.items():
        db.create(name, 2, contents)
    if not rows:
        return
    store = checkpoint(db, backend())
    loaded = restore(store)
    assert loaded.snapshot() == db.snapshot()
    assert checkpoint_equal(db, store)
