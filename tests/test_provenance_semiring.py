"""Semiring laws (unit + property-based) and expression algebra tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    WeightedTropicalSemiring,
    WhySemiring,
    check_semiring_laws,
)
from repro.provenance.expression import (
    MappingApp,
    ONE,
    Product,
    ProvenanceError,
    Sum,
    ZERO,
    mapping_app,
    product_of,
    ref,
    sum_of,
    token,
)


# ---------------------------------------------------------------------------
# Semiring laws
# ---------------------------------------------------------------------------

booleans = st.booleans()
counts = st.integers(0, 50)
# Integer-valued costs: float addition is not exactly associative, and the
# semiring laws are checked with exact equality.
costs = st.one_of(
    st.integers(0, 100).map(float), st.just(float("inf"))
)
token_sets = st.one_of(
    st.none(), st.frozensets(st.integers(0, 5), max_size=4)
)
witness_sets = st.frozensets(
    st.frozensets(st.integers(0, 4), max_size=3), max_size=4
)


@settings(max_examples=80, deadline=None)
@given(a=booleans, b=booleans, c=booleans)
def test_boolean_semiring_laws(a, b, c):
    assert check_semiring_laws(BooleanSemiring(), a, b, c) == []


@settings(max_examples=80, deadline=None)
@given(a=counts, b=counts, c=counts)
def test_counting_semiring_laws_below_saturation(a, b, c):
    assert check_semiring_laws(CountingSemiring(), a, b, c) == []


@settings(max_examples=80, deadline=None)
@given(a=token_sets, b=token_sets, c=token_sets)
def test_lineage_semiring_laws(a, b, c):
    assert check_semiring_laws(LineageSemiring(), a, b, c) == []


@settings(max_examples=60, deadline=None)
@given(a=witness_sets, b=witness_sets, c=witness_sets)
def test_why_semiring_laws(a, b, c):
    assert check_semiring_laws(WhySemiring(), a, b, c) == []


@settings(max_examples=80, deadline=None)
@given(a=costs, b=costs, c=costs)
def test_tropical_semiring_laws(a, b, c):
    assert check_semiring_laws(TropicalSemiring(), a, b, c) == []


class TestSemiringBasics:
    def test_counting_saturates(self):
        semiring = CountingSemiring(saturation=100)
        assert semiring.plus(60, 60) == 100
        assert semiring.times(20, 20) == 100

    def test_lineage_zero_vs_one(self):
        semiring = LineageSemiring()
        assert semiring.zero is None
        assert semiring.one == frozenset()
        assert semiring.times(None, frozenset({1})) is None
        assert semiring.plus(None, frozenset({1})) == frozenset({1})

    def test_why_distinguishes_alternatives(self):
        semiring = WhySemiring()
        w1 = frozenset({frozenset({1})})
        w2 = frozenset({frozenset({2})})
        assert semiring.plus(w1, w2) == frozenset(
            {frozenset({1}), frozenset({2})}
        )
        assert semiring.times(w1, w2) == frozenset({frozenset({1, 2})})

    def test_weighted_tropical_mapping_costs(self):
        semiring = WeightedTropicalSemiring({"m1": 2.5})
        assert semiring.map_apply("m1", 1.0) == 3.5
        assert semiring.map_apply("other", 1.0) == 1.0

    def test_sum_product_helpers(self):
        semiring = BooleanSemiring()
        assert semiring.sum([]) is False
        assert semiring.product([]) is True
        assert semiring.sum([False, True]) is True
        assert semiring.product([True, False]) is False


# ---------------------------------------------------------------------------
# Expression normalization and evaluation
# ---------------------------------------------------------------------------

p1 = token("B", (3, 5))
p2 = token("U", (2, 5))
p3 = token("G", (3, 5, 2))


class TestExpressionAlgebra:
    def test_sum_flattens_and_drops_zero(self):
        expr = sum_of([p1, ZERO, sum_of([p2, p3])])
        assert isinstance(expr, Sum)
        assert set(expr.args) == {p1, p2, p3}

    def test_product_flattens_and_drops_one(self):
        expr = product_of([p1, ONE, product_of([p2])])
        assert isinstance(expr, Product)
        assert set(expr.args) == {p1, p2}

    def test_product_annihilates_on_zero(self):
        assert product_of([p1, ZERO]) is ZERO

    def test_empty_sum_is_zero_empty_product_is_one(self):
        assert sum_of([]) is ZERO
        assert product_of([]) is ONE

    def test_singleton_collapse(self):
        assert sum_of([p1]) == p1
        assert product_of([p1]) == p1

    def test_sum_deduplicates(self):
        assert sum_of([p1, p1]) == p1

    def test_mapping_app_of_zero_is_zero(self):
        assert mapping_app("m1", ZERO) is ZERO

    def test_operators(self):
        assert (p1 + p2) == sum_of([p1, p2])
        assert (p1 * p2) == product_of([p1, p2])

    def test_normalization_is_order_insensitive(self):
        assert sum_of([p1, p2]) == sum_of([p2, p1])
        assert product_of([p1, p2]) == product_of([p2, p1])

    def test_tokens_collected(self):
        expr = mapping_app("m4", p1 * p2) + mapping_app("m1", p3)
        assert expr.tokens() == {
            ("B", (3, 5)), ("U", (2, 5)), ("G", (3, 5, 2))
        }
        assert expr.mapping_names() == {"m1", "m4"}

    def test_refs_tracked_separately(self):
        expr = mapping_app("m3", ref("B", (3, 2)))
        assert expr.refs() == {("B", (3, 2))}
        assert expr.tokens() == frozenset()

    def test_repr_example6_shape(self):
        # Pv(B(3,2)) = m1(p3) + m4(p1 p2) — Example 6.
        expr = mapping_app("m1", p3) + mapping_app("m4", p1 * p2)
        text = repr(expr)
        assert "m1(" in text and "m4(" in text and " + " in text


class TestExpressionEvaluation:
    def expr(self):
        return mapping_app("m1", p3) + mapping_app("m4", p1 * p2)

    def test_example7_trust_evaluation(self):
        """Example 7: trusting p3 and p1 but not p2 still yields T,
        via the m1 alternative: T.T + T.T.D = T."""
        trust = {p3.token: True, p1.token: True, p2.token: False}
        value = self.expr().evaluate(
            BooleanSemiring(), lambda tok: trust[tok]
        )
        assert value is True

    def test_distrusting_p3_and_p2_rejects(self):
        # "Distrusting p2 and m1 leads to rejecting B(3,2)" — without m1's
        # alternative and with p2 distrusted, no derivation survives.
        trust = {p3.token: True, p1.token: True, p2.token: False}
        value = self.expr().evaluate(
            BooleanSemiring(),
            lambda tok: trust[tok],
            mapping_value=lambda m, inner: False if m == "m1" else inner,
        )
        assert value is False

    def test_counting_number_of_derivations(self):
        value = self.expr().evaluate(CountingSemiring(), lambda tok: 1)
        assert value == 2

    def test_lineage_unions_everything(self):
        value = self.expr().evaluate(
            LineageSemiring(), lambda tok: frozenset({tok})
        )
        assert value == {p1.token, p2.token, p3.token}

    def test_why_provenance_witnesses(self):
        value = self.expr().evaluate(
            WhySemiring(), lambda tok: frozenset({frozenset({tok})})
        )
        assert value == {
            frozenset({p3.token}),
            frozenset({p1.token, p2.token}),
        }

    def test_tropical_cheapest_derivation(self):
        costs = {p3.token: 5.0, p1.token: 1.0, p2.token: 1.0}
        value = self.expr().evaluate(
            TropicalSemiring(), lambda tok: costs[tok]
        )
        assert value == 2.0  # p1 + p2 beats p3

    def test_unresolved_ref_raises(self):
        expr = ref("B", (1, 2))
        with pytest.raises(ProvenanceError):
            expr.evaluate(BooleanSemiring(), lambda tok: True)

    def test_zero_one_evaluation(self):
        semiring = CountingSemiring()
        assert ZERO.evaluate(semiring, lambda t: 1) == 0
        assert ONE.evaluate(semiring, lambda t: 1) == 1


# ---------------------------------------------------------------------------
# Homomorphism property: evaluating a composite expression equals composing
# evaluations (hypothesis over random expressions).
# ---------------------------------------------------------------------------


@st.composite
def expressions(draw, depth=0):
    if depth >= 3:
        return token("T", (draw(st.integers(0, 4)),))
    kind = draw(st.sampled_from(["token", "sum", "product", "mapping"]))
    if kind == "token":
        return token("T", (draw(st.integers(0, 4)),))
    if kind == "mapping":
        return mapping_app(
            draw(st.sampled_from(["m1", "m2"])),
            draw(expressions(depth=depth + 1)),
        )
    parts = draw(
        st.lists(expressions(depth=depth + 1), min_size=1, max_size=3)
    )
    return sum_of(parts) if kind == "sum" else product_of(parts)


@settings(max_examples=60, deadline=None)
@given(left=expressions(), right=expressions())
def test_property_evaluation_is_homomorphic(left, right):
    """eval(a + b) == eval(a) + eval(b) and eval(a * b) == eval(a) * eval(b)
    — the central result of [16] our evaluator relies on.

    The sum law is asserted for idempotent-plus semirings only, because
    ``sum_of`` deduplicates summands (sound there by construction; the
    counting-semiring consumers never build duplicate summands).  The
    product law holds everywhere.
    """
    idempotent_plus = [
        (BooleanSemiring(), lambda tok: tok[1][0] % 2 == 0),
        (WhySemiring(), lambda tok: frozenset({frozenset({tok})})),
        (TropicalSemiring(), lambda tok: float(tok[1][0])),
    ]
    all_semirings = idempotent_plus + [
        (CountingSemiring(), lambda tok: tok[1][0] + 1),
    ]
    for semiring, valuation in idempotent_plus:
        val = lambda e: e.evaluate(semiring, valuation)  # noqa: E731
        assert val(sum_of([left, right])) == semiring.plus(
            val(left), val(right)
        )
    for semiring, valuation in all_semirings:
        val = lambda e: e.evaluate(semiring, valuation)  # noqa: E731
        assert val(product_of([left, right])) == semiring.times(
            val(left), val(right)
        )
