"""Property test: the bind-join executor against a brute-force reference.

Random conjunctive queries (with shared variables, constants, and safe
negation) are evaluated both by the plan executor (under both planners and
all legal atom orders) and by a naive nested-loop reference; the results
must match exactly.  This pins down the executor's join semantics, which
everything else in the system sits on.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import Atom, Constant, Rule, Variable, match_atom
from repro.datalog.plan import RulePlan, check_plan, execute_plan
from repro.datalog.planner import CostBasedPlanner, PreparedPlanner
from repro.storage import Database, Instance

VARS = [Variable(name) for name in ("x", "y", "z")]


@st.composite
def random_query(draw):
    """A safe rule over relations E0..E2 (arity 2) with 2-3 body atoms."""
    n_atoms = draw(st.integers(2, 3))
    body = []
    used_vars: set[Variable] = set()
    for index in range(n_atoms):
        relation = f"E{draw(st.integers(0, 2))}"
        terms = []
        for _ in range(2):
            if draw(st.booleans()):
                var = draw(st.sampled_from(VARS))
                terms.append(var)
                used_vars.add(var)
            else:
                terms.append(Constant(draw(st.integers(0, 2))))
        body.append(Atom(relation, tuple(terms)))
    if not used_vars:
        body[0] = Atom(body[0].predicate, (VARS[0], body[0].terms[1]))
        used_vars.add(VARS[0])
    # Possibly negate the last atom if its variables are covered earlier.
    positive_vars: set[Variable] = set()
    for atom in body[:-1]:
        positive_vars |= atom.variable_set()
    if body[-1].variable_set() <= positive_vars and draw(st.booleans()):
        body[-1] = body[-1].negate()
        used_vars = positive_vars
    head_vars = tuple(sorted(used_vars, key=lambda v: v.name))
    rule = Rule(Atom("H", head_vars), tuple(body))
    rule.check_safety()
    tables = {
        f"E{i}": draw(
            st.sets(
                st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=6
            )
        )
        for i in range(3)
    }
    return rule, tables


def brute_force(rule, tables):
    """Nested-loop reference evaluation."""
    positive = [a for a in rule.body if not a.negated]
    negative = [a for a in rule.body if a.negated]
    answers = set()
    pools = [sorted(tables[a.predicate]) for a in positive]
    for combo in itertools.product(*pools):
        subst: dict = {}
        ok = True
        for atom, row in zip(positive, combo):
            extended = match_atom(atom, row, subst)
            if extended is None:
                ok = False
                break
            subst = extended
        if not ok:
            continue
        if any(
            tuple(
                t.value if isinstance(t, Constant) else subst[t]
                for t in atom.terms
            )
            in tables[atom.predicate]
            for atom in negative
        ):
            continue
        answers.add(tuple(subst[v] for v in rule.head.terms))
    return answers


def legal_orders(rule):
    for order in itertools.permutations(range(len(rule.body))):
        try:
            check_plan(rule, order)
        except Exception:
            continue
        yield order


@settings(max_examples=60, deadline=None)
@given(data=random_query())
def test_property_executor_matches_brute_force(data):
    rule, tables = data
    expected = brute_force(rule, tables)
    instances = {
        name: Instance(name, 2, rows) for name, rows in tables.items()
    }

    def resolve(_index, atom):
        return instances[atom.predicate]

    for order in legal_orders(rule):
        plan = RulePlan(rule, order)
        got = {row for row, _ in execute_plan(plan, resolve)}
        assert got == expected, f"order {order} diverged for {rule!r}"


@settings(max_examples=40, deadline=None)
@given(data=random_query())
def test_property_both_planners_match_brute_force(data):
    rule, tables = data
    expected = brute_force(rule, tables)
    db = Database()
    for name, rows in tables.items():
        db.create(name, 2, rows)

    def resolve(_index, atom):
        return db[atom.predicate]

    for planner in (PreparedPlanner(), CostBasedPlanner()):
        plan = planner.plan(rule, db, None)
        got = {row for row, _ in execute_plan(plan, resolve)}
        assert got == expected, f"{type(planner).__name__} diverged"
