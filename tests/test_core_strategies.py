"""Cross-strategy equivalence: incremental == DRed == full recomputation.

The paper's central correctness claim for Section 4.2 is that all three
maintenance strategies compute the same consistent state (Definition 3.1).
These tests check it on the paper's example, on adversarial cyclic-support
cases, and property-based over random workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDSS
from repro.core import (
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
)
from repro.core.editlog import PublishDelta
from repro.core.exchange import ExchangeSystem
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping


def cyclic_internal() -> InternalSchema:
    """Two peers mapping into each other (full tgds): provenance cycles."""
    return InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a", "b")),)),
            PeerSchema("P2", (RelationSchema("S", ("a", "b")),)),
        ),
        (
            SchemaMapping.parse("mrs", "R(x, y) -> S(x, y)"),
            SchemaMapping.parse("msr", "S(x, y) -> R(x, y)"),
        ),
    )


def run_all_strategies(internal, base, delta):
    """Apply ``delta`` with every strategy on identical initial states;
    return the three output snapshots."""
    snapshots = []
    for strategy in (
        STRATEGY_INCREMENTAL,
        STRATEGY_DRED,
        STRATEGY_RECOMPUTE,
    ):
        system = ExchangeSystem(internal)
        for relation, rows in base.items():
            system.db[f"{relation}__l"].insert_many(rows)
        system.recompute()
        system.apply_delta(delta, strategy)
        snapshots.append(
            {name: system.db[name].rows() for name in system.db.relation_names()}
        )
    return snapshots


class TestCyclicSupport:
    def test_cyclic_tuples_garbage_collected(self):
        """R(1,2) and S(1,2) support each other through the mappings; when
        the base contribution is deleted, both must be garbage collected
        even though each still has a direct derivation from the other
        (Section 4.2's motivating case for the derivability test)."""
        internal = cyclic_internal()
        delta = PublishDelta(local_deletes={"R": {(1, 2)}})
        snapshots = run_all_strategies(
            internal, {"R": {(1, 2)}}, delta
        )
        for snapshot in snapshots:
            assert snapshot["R__o"] == frozenset()
            assert snapshot["S__o"] == frozenset()
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_partial_deletion_keeps_other_tuples(self):
        internal = cyclic_internal()
        delta = PublishDelta(local_deletes={"R": {(1, 2)}})
        snapshots = run_all_strategies(
            internal, {"R": {(1, 2), (3, 4)}, "S": {(5, 6)}}, delta
        )
        for snapshot in snapshots:
            assert snapshot["R__o"] == {(3, 4), (5, 6)}
            assert snapshot["S__o"] == {(3, 4), (5, 6)}
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_tuple_locally_contributed_at_both_peers(self):
        """Deleting one peer's contribution keeps the tuple alive through
        the other peer's (it remains edb-derivable)."""
        internal = cyclic_internal()
        delta = PublishDelta(local_deletes={"R": {(1, 2)}})
        snapshots = run_all_strategies(
            internal, {"R": {(1, 2)}, "S": {(1, 2)}}, delta
        )
        for snapshot in snapshots:
            assert snapshot["R__o"] == {(1, 2)}
            assert snapshot["S__o"] == {(1, 2)}

    def test_rejection_breaks_the_cycle(self):
        internal = cyclic_internal()
        delta = PublishDelta(rejection_inserts={"S": {(1, 2)}})
        snapshots = run_all_strategies(internal, {"R": {(1, 2)}}, delta)
        for snapshot in snapshots:
            # S rejects the tuple; R keeps it (local contribution).
            assert snapshot["S__o"] == frozenset()
            assert snapshot["R__o"] == {(1, 2)}
        assert snapshots[0] == snapshots[1] == snapshots[2]


class TestThreePeerChainDeletions:
    def _cdss(self, strategy):
        cdss = CDSS(strategy=strategy)
        cdss.add_peer("P1", {"A": ("k", "v")})
        cdss.add_peer("P2", {"B2": ("k", "v")})
        cdss.add_peer("P3", {"C": ("k", "v")})
        cdss.add_mapping("mab", "A(k, v) -> B2(k, v)")
        cdss.add_mapping("mbc", "B2(k, v) -> C(k, v)")
        for i in range(10):
            cdss.insert("A", (i, i * 10))
        cdss.insert("B2", (100, 1))
        cdss.update_exchange()
        return cdss

    @pytest.mark.parametrize(
        "strategy", [STRATEGY_INCREMENTAL, STRATEGY_DRED, STRATEGY_RECOMPUTE]
    )
    def test_chain_deletion_cascades(self, strategy):
        cdss = self._cdss(strategy)
        for i in range(5):
            cdss.delete("A", (i, i * 10))
        cdss.update_exchange()
        assert cdss.instance("A") == {(i, i * 10) for i in range(5, 10)}
        assert cdss.instance("C") == {(i, i * 10) for i in range(5, 10)} | {
            (100, 1)
        }
        assert cdss.system().is_consistent()

    @pytest.mark.parametrize(
        "strategy", [STRATEGY_INCREMENTAL, STRATEGY_DRED]
    )
    def test_mixed_insert_delete_batch(self, strategy):
        cdss = self._cdss(strategy)
        cdss.delete("A", (0, 0))
        cdss.insert("A", (50, 500))
        cdss.delete("B2", (3, 30))  # rejection of imported data
        cdss.update_exchange()
        assert (0, 0) not in cdss.instance("C")
        assert (50, 500) in cdss.instance("C")
        assert (3, 30) not in cdss.instance("B2")
        assert (3, 30) not in cdss.instance("C")  # rejection blocks the flow
        assert (3, 30) in cdss.instance("A")  # source unaffected
        assert cdss.system().is_consistent()


class TestMultiAtomBodies:
    """Regression: a peer with several relations makes mapping bodies
    multi-atom joins; deleting both join sides in one batch must still
    propagate (DRed's delta rules must join against the pre-deletion
    state)."""

    def _internal(self):
        return InternalSchema(
            (
                PeerSchema(
                    "P1",
                    (
                        RelationSchema("A1", ("k", "x")),
                        RelationSchema("A2", ("k", "y")),
                    ),
                ),
                PeerSchema("P2", (RelationSchema("B1", ("k", "x", "y")),)),
            ),
            (SchemaMapping.parse("m", "A1(k, x), A2(k, y) -> B1(k, x, y)"),),
        )

    def test_same_batch_deletion_of_both_join_sides(self):
        internal = self._internal()
        delta = PublishDelta(
            local_deletes={"A1": {(1, "x1")}, "A2": {(1, "y1")}}
        )
        snapshots = run_all_strategies(
            internal,
            {"A1": {(1, "x1"), (2, "x2")}, "A2": {(1, "y1"), (2, "y2")}},
            delta,
        )
        for snapshot in snapshots:
            assert snapshot["B1__o"] == {(2, "x2", "y2")}
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_deleting_one_join_side_only(self):
        internal = self._internal()
        delta = PublishDelta(local_deletes={"A1": {(1, "x1")}})
        snapshots = run_all_strategies(
            internal,
            {"A1": {(1, "x1"), (2, "x2")}, "A2": {(1, "y1"), (2, "y2")}},
            delta,
        )
        for snapshot in snapshots:
            assert snapshot["B1__o"] == {(2, "x2", "y2")}
            # A2's row survives (it is a local contribution).
            assert snapshot["A2__o"] == {(1, "y1"), (2, "y2")}
        assert snapshots[0] == snapshots[1] == snapshots[2]


@st.composite
def chain_workload(draw):
    base = draw(
        st.sets(st.integers(0, 12), min_size=1, max_size=8)
    )
    deletions = draw(st.sets(st.sampled_from(sorted(base)), max_size=5))
    rejections = draw(st.sets(st.integers(0, 12), max_size=3))
    insertions = draw(st.sets(st.integers(20, 30), max_size=4))
    return base, deletions, rejections, insertions


@settings(max_examples=40, deadline=None)
@given(workload=chain_workload())
def test_property_strategies_agree_on_random_workloads(workload):
    """Property: for random base data and random mixed update batches, all
    three strategies produce identical databases (including provenance
    tables), each equal to a fresh recomputation."""
    base, deletions, rejections, insertions = workload
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
            PeerSchema("P3", (RelationSchema("T", ("a",)),)),
        ),
        (
            SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
            SchemaMapping.parse("m_st", "S(x) -> T(x)"),
            SchemaMapping.parse("m_tr", "T(x) -> R(x)"),  # cycle
        ),
    )
    delta = PublishDelta(
        local_deletes={"R": {(x,) for x in deletions}},
        rejection_inserts={"S": {(x,) for x in rejections}},
        local_inserts={"R": {(x,) for x in insertions}},
    )
    snapshots = run_all_strategies(internal, {"R": {(x,) for x in base}}, delta)
    assert snapshots[0] == snapshots[1]
    assert snapshots[1] == snapshots[2]


@settings(max_examples=25, deadline=None)
@given(workload=chain_workload())
def test_property_incremental_stays_consistent_over_two_batches(workload):
    base, deletions, rejections, insertions = workload
    cdss = CDSS(strategy=STRATEGY_INCREMENTAL)
    cdss.add_peer("P1", {"R": ("a",)})
    cdss.add_peer("P2", {"S": ("a",)})
    cdss.add_mapping("m_rs", "R(x) -> S(x)")
    cdss.add_mapping("m_sr", "S(x) -> R(x)")
    for x in base:
        cdss.insert("R", (x,))
    cdss.update_exchange()
    for x in deletions:
        cdss.delete("R", (x,))
    for x in rejections:
        cdss.delete("S", (x,))  # rejection (imported at S)
    for x in insertions:
        cdss.insert("R", (x,))
    cdss.update_exchange()
    assert cdss.system().is_consistent()
