"""Tests for goal-directed derivation testing and trust machinery."""

from repro.core.derivation import DerivationTest
from repro.core.exchange import ExchangeSystem
from repro.provenance import (
    TRUST_ALL,
    TrustCondition,
    TrustPolicy,
    compose_conditions,
    evaluate_trust,
    trust_ranks,
)
from repro.provenance.graph import build_provenance_graph
from repro.schema import InternalSchema, PeerSchema, RelationSchema, SchemaMapping


def chain_system(policies=None, base=((1,), (2,))):
    internal = InternalSchema(
        (
            PeerSchema("P1", (RelationSchema("R", ("a",)),)),
            PeerSchema("P2", (RelationSchema("S", ("a",)),)),
            PeerSchema("P3", (RelationSchema("T", ("a",)),)),
        ),
        (
            SchemaMapping.parse("m_rs", "R(x) -> S(x)"),
            SchemaMapping.parse("m_st", "S(x) -> T(x)"),
        ),
    )
    system = ExchangeSystem(internal, policies=policies)
    system.db["R__l"].insert_many(base)
    system.recompute()
    return system


class TestDerivationTest:
    def test_derivable_through_chain(self):
        system = chain_system()
        tester = DerivationTest(system.db, system.encoding)
        assert tester.is_derivable("T", (1,))
        assert tester.is_derivable("S", (2,))
        assert not tester.is_derivable("T", (99,))

    def test_local_contribution_always_derivable(self):
        system = chain_system()
        tester = DerivationTest(system.db, system.encoding)
        assert tester.is_derivable("R", (1,))

    def test_rejected_tuple_not_output_derivable(self):
        system = chain_system()
        system.db["S__r"].insert((1,))
        tester = DerivationTest(system.db, system.encoding)
        verdict = tester.derivable([("S", (1,))])[("S", (1,))]
        assert verdict.output is False  # rejected from R__o
        assert verdict.trusted is True  # still trusted-derivable (R__t)
        assert verdict.any is True  # still derivable at all (R__i)

    def test_rejection_blocks_downstream_sources(self):
        system = chain_system()
        system.db["S__r"].insert((1,))
        system.db["S__o"].delete((1,))
        # T(1,) can only come via S(1,) which is rejected.
        tester = DerivationTest(system.db, system.encoding)
        assert not tester.is_derivable("T", (1,))

    def test_trust_condition_blocks_derivability(self):
        policy = TrustPolicy("P2")
        policy.set_mapping_condition(
            "m_rs", TrustCondition("only even", lambda row: row[0] % 2 == 0)
        )
        system = chain_system(policies={"P2": policy})
        tester = DerivationTest(
            system.db, system.encoding, system.head_filters
        )
        verdict = tester.derivable([("S", (1,))])[("S", (1,))]
        assert verdict.trusted is False
        assert verdict.any is True  # derivation exists, just untrusted
        assert tester.is_derivable("S", (2,))

    def test_instrumentation_counts(self):
        system = chain_system()
        tester = DerivationTest(system.db, system.encoding)
        tester.is_derivable("T", (1,))
        assert tester.slice_tuples_visited > 0
        assert tester.support_rows_visited > 0


class TestTrustConditions:
    def test_conjoin(self):
        even = TrustCondition("even", lambda r: r[0] % 2 == 0)
        small = TrustCondition("small", lambda r: r[0] < 10)
        both = even.conjoin(small)
        assert both((2,)) is True
        assert both((12,)) is False
        assert both((3,)) is False

    def test_conjoin_with_trust_all_is_identity(self):
        even = TrustCondition("even", lambda r: r[0] % 2 == 0)
        assert TRUST_ALL.conjoin(even) is even
        assert even.conjoin(TRUST_ALL) is even

    def test_from_attributes(self):
        schema = RelationSchema("B", ("id", "nam"))
        condition = TrustCondition.from_attributes(
            schema, lambda attrs: attrs["nam"] < 3
        )
        assert condition((1, 2)) is True
        assert condition((1, 5)) is False

    def test_compose_conditions_ands_across_peers(self):
        p1 = TrustPolicy("P1")
        p1.set_mapping_condition(
            "m", TrustCondition("even", lambda r: r[0] % 2 == 0)
        )
        p2 = TrustPolicy("P2")
        p2.set_mapping_condition(
            "m", TrustCondition("small", lambda r: r[0] < 10)
        )
        combined = compose_conditions([p1, p2], "m")
        assert combined((2,)) and not combined((12,)) and not combined((3,))

    def test_policy_token_judgments(self):
        policy = TrustPolicy("P")
        policy.distrust_token("R", (1,))
        policy.distrust_peer("Q")
        owner_of = {"R": "P", "S": "Q"}
        assert not policy.trusts_token(("R", (1,)), owner_of)
        assert policy.trusts_token(("R", (2,)), owner_of)
        assert not policy.trusts_token(("S", (5,)), owner_of)

    def test_is_trivial(self):
        assert TrustPolicy("P").is_trivial()
        policy = TrustPolicy("P")
        policy.distrust_peer("Q")
        assert not policy.is_trivial()


class TestTrustEvaluationOverGraph:
    def test_distrusted_peer_cuts_downstream(self):
        system = chain_system()
        graph = build_provenance_graph(system.db, system.encoding)
        policy = TrustPolicy("P3")
        policy.distrust_peer("P1")
        verdicts = evaluate_trust(
            graph, policy, internal=system.internal
        )
        # Everything derives from P1's base data, so nothing is trusted.
        assert verdicts[("T", (1,))] is False
        assert verdicts[("R", (1,))] is False

    def test_trivial_policy_trusts_everything(self):
        system = chain_system()
        graph = build_provenance_graph(system.db, system.encoding)
        verdicts = evaluate_trust(
            graph, TrustPolicy("P3"), internal=system.internal
        )
        assert all(verdicts.values())

    def test_delegation_composition_with_extra_policies(self):
        # P2 constrains m_rs; evaluating P3's trust WITH delegation applies
        # P2's condition on the way through S.
        p2 = TrustPolicy("P2")
        p2.set_mapping_condition(
            "m_rs", TrustCondition("even", lambda r: r[0] % 2 == 0)
        )
        system = chain_system()
        graph = build_provenance_graph(system.db, system.encoding)
        verdicts = evaluate_trust(
            graph,
            TrustPolicy("P3"),
            internal=system.internal,
            extra_policies={"P2": p2},
        )
        assert verdicts[("T", (2,))] is True
        assert verdicts[("T", (1,))] is False  # odd: P2's condition fails


class TestRankedTrust:
    def test_trust_ranks_tropical(self):
        system = chain_system()
        graph = build_provenance_graph(system.db, system.encoding)
        ranks = trust_ranks(
            graph,
            token_costs=lambda tok: 1.0,
            mapping_costs={"m_rs": 1.0, "m_st": 1.0},
        )
        assert ranks[("R", (1,))] == 1.0  # base cost only
        assert ranks[("S", (1,))] == 2.0  # base + m_rs
        assert ranks[("T", (1,))] == 3.0  # base + m_rs + m_st

    def test_cheapest_alternative_wins(self):
        internal = InternalSchema(
            (
                PeerSchema("P1", (RelationSchema("R", ("a",)),)),
                PeerSchema("P2", (RelationSchema("S", ("a",)),)),
                PeerSchema("P3", (RelationSchema("T", ("a",)),)),
            ),
            (
                SchemaMapping.parse("cheap", "R(x) -> T(x)"),
                SchemaMapping.parse("via_s1", "R(x) -> S(x)"),
                SchemaMapping.parse("via_s2", "S(x) -> T(x)"),
            ),
        )
        system = ExchangeSystem(internal)
        system.db["R__l"].insert((1,))
        system.recompute()
        graph = build_provenance_graph(system.db, system.encoding)
        ranks = trust_ranks(
            graph,
            mapping_costs={"cheap": 1.0, "via_s1": 5.0, "via_s2": 5.0},
        )
        assert ranks[("T", (1,))] == 1.0
