"""Tests for the v2 API surface: peer handles, transactional batches,
lazy relation views, trust scopes, and the deprecated facade shims."""

import os

import pytest

from repro import CDSS, Batch, BatchError, PeerHandle, RelationView
from repro.schema import SchemaError


def small_cdss() -> CDSS:
    cdss = CDSS("t")
    cdss.add_peer("P1", {"R": ("a",)})
    cdss.add_peer("P2", {"S": ("a",)})
    cdss.add_mapping("m", "R(x) -> S(x)")
    return cdss


def running_example() -> CDSS:
    cdss = CDSS("bio")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    return cdss


class TestPeerHandle:
    def test_add_peer_returns_handle(self):
        cdss = CDSS()
        handle = cdss.add_peer("P", {"R": ("a", "b")})
        assert isinstance(handle, PeerHandle)
        assert handle.name == "P"
        assert handle.relations() == ("R",)
        assert handle.schema.relation("R").arity == 2

    def test_peer_lookup_equals_add_peer_handle(self):
        cdss = small_cdss()
        assert cdss.peer("P1") == cdss.peer("P1")
        assert cdss.peer("P1") != cdss.peer("P2")

    def test_unknown_peer_rejected(self):
        with pytest.raises(SchemaError):
            small_cdss().peer("Nope")

    def test_insert_and_delete_scoped_to_owned_relations(self):
        cdss = small_cdss()
        p1 = cdss.peer("P1")
        p1.insert("R", (1,))
        assert p1.pending_edits() == 1
        with pytest.raises(SchemaError):
            p1.insert("S", (1,))  # S belongs to P2
        with pytest.raises(SchemaError):
            p1.delete("S", (1,))
        with pytest.raises(SchemaError):
            p1.relation("S")

    def test_handle_survives_reconfiguration(self):
        cdss = small_cdss()
        p1 = cdss.peer("P1")
        p1.insert("R", (1,))
        cdss.update_exchange()
        cdss.add_peer("P3", {"T": ("a",)})
        cdss.add_mapping("m2", "S(x) -> T(x)")
        # The old handle still reads the rebuilt system.
        assert p1.relation("R").to_rows() == {(1,)}

    def test_peer_handles_listing(self):
        cdss = small_cdss()
        assert [h.name for h in cdss.peer_handles()] == ["P1", "P2"]

    def test_repr(self):
        assert "P1" in repr(small_cdss().peer("P1"))


class TestBatch:
    def test_commit_on_clean_exit(self):
        cdss = small_cdss()
        with cdss.peer("P1").batch() as tx:
            tx.insert("R", (1,))
            tx.insert("R", (2,))
            assert cdss.pending_edits() == 0  # staged, not yet applied
        assert cdss.pending_edits() == 2
        cdss.update_exchange()
        assert cdss.relation("S").to_rows() == {(1,), (2,)}

    def test_rollback_on_exception(self):
        cdss = small_cdss()
        with pytest.raises(RuntimeError, match="boom"):
            with cdss.peer("P1").batch() as tx:
                tx.insert("R", (1,))
                raise RuntimeError("boom")
        assert cdss.pending_edits() == 0

    def test_explicit_rollback(self):
        cdss = small_cdss()
        with cdss.peer("P1").batch() as tx:
            tx.insert("R", (1,))
            assert tx.rollback() == 1
        assert cdss.pending_edits() == 0
        assert tx.closed

    def test_system_batch_routes_to_owning_peers(self):
        cdss = small_cdss()
        with cdss.batch() as tx:
            tx.insert("R", (1,))
            tx.delete("S", (9,))
        assert cdss.peer("P1").pending_edits() == 1
        assert cdss.peer("P2").pending_edits() == 1

    def test_peer_batch_rejects_foreign_relation(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            with cdss.peer("P1").batch() as tx:
                tx.insert("S", (1,))
        # The SchemaError also rolled the batch back.
        assert cdss.pending_edits() == 0

    def test_unknown_relation_rejected_at_staging_time(self):
        cdss = small_cdss()
        tx = cdss.batch()
        tx.insert("R", (1,))
        with pytest.raises(SchemaError):
            tx.insert("Nope", (1,))
        assert len(tx) == 1  # earlier staged edit untouched

    def test_insert_many_and_chaining(self):
        cdss = small_cdss()
        with cdss.batch() as tx:
            tx.insert_many("R", [(1,), (2,)]).delete_many("R", [(3,)])
            assert [u.sign for u in tx.staged] == ["+", "+", "-"]
        assert cdss.pending_edits() == 3

    def test_closed_batch_rejects_everything(self):
        cdss = small_cdss()
        tx = cdss.batch()
        with tx:
            tx.insert("R", (1,))
        for operation in (
            lambda: tx.insert("R", (2,)),
            tx.commit,
            tx.rollback,
            tx.__enter__,
        ):
            with pytest.raises(BatchError):
                operation()

    def test_batch_preserves_edit_order(self):
        cdss = small_cdss()
        with cdss.peer("P1").batch() as tx:
            tx.insert("R", (1,))
            tx.delete("R", (1,))
        cdss.update_exchange()
        # insert-then-delete nets out to nothing.
        assert cdss.relation("R").to_rows() == frozenset()

    def test_batch_is_atomic_bulk_path(self):
        cdss = small_cdss()
        log = cdss._peer("P1").edit_log
        with cdss.peer("P1").batch() as tx:
            tx.insert_many("R", [(i,) for i in range(50)])
        assert len(log) == 50


class TestRelationView:
    def test_view_is_lazy_and_live(self):
        cdss = small_cdss()
        view = cdss.relation("S")  # created before any data exists
        assert len(view) == 0
        cdss.peer("P1").insert("R", (1,))
        cdss.update_exchange()
        assert len(view) == 1  # same object sees the new state
        assert (1,) in view
        assert view.to_rows() == {(1,)}

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            small_cdss().relation("Nope")

    def test_where_filters_and_composes(self):
        cdss = small_cdss()
        with cdss.peer("P1").batch() as tx:
            tx.insert_many("R", [(i,) for i in range(10)])
        cdss.update_exchange()
        evens = cdss.relation("R").where(lambda r: r[0] % 2 == 0)
        assert len(evens) == 5
        assert (2,) in evens and (3,) not in evens
        small = evens.where(lambda r: r[0] < 4)
        assert small.to_rows() == {(0,), (2,)}
        # The base view is unchanged.
        assert len(cdss.relation("R")) == 10

    def test_certain_drops_labeled_nulls(self):
        cdss = running_example()
        cdss.peer("PBioSQL").insert("B", (3, 5))
        cdss.update_exchange()
        U = cdss.peer("PuBio").relation("U")
        assert len(U) == 1  # (5, null) via m3
        assert len(U.certain()) == 0
        assert U.certain().to_rows() == frozenset()

    def test_provenance_through_view(self):
        cdss = running_example()
        with cdss.batch() as tx:
            tx.insert("G", (3, 5, 2)).insert("B", (3, 5)).insert("U", (2, 5))
        cdss.update_exchange()
        expression = cdss.relation("B").provenance((3, 2))
        assert "m1" in repr(expression) and "m4" in repr(expression)

    def test_view_metadata(self):
        cdss = small_cdss()
        view = cdss.peer("P1").relation("R")
        assert view.name == "R"
        assert view.peer == "P1"
        assert view.schema.attributes == ("a",)
        assert "RelationView" in repr(view)
        assert "filtered" in repr(view.where(lambda r: True))

    def test_bool_and_iteration(self):
        cdss = small_cdss()
        assert not cdss.relation("R")
        cdss.peer("P1").insert("R", (7,))
        cdss.update_exchange()
        assert cdss.relation("R")
        assert list(cdss.relation("R")) == [(7,)]


class TestTrustScope:
    def test_condition_filters_at_exchange_time(self):
        cdss = small_cdss()
        cdss.peer("P2").trust().condition("m", lambda row: row[0] % 2 == 0)
        with cdss.peer("P1").batch() as tx:
            tx.insert("R", (1,)).insert("R", (2,))
        cdss.update_exchange()
        assert cdss.relation("S").to_rows() == {(2,)}

    def test_offline_verdicts(self):
        cdss = running_example()
        with cdss.batch() as tx:
            tx.insert("G", (3, 5, 2)).insert("B", (3, 5)).insert("U", (2, 5))
        cdss.update_exchange()
        trust = cdss.peer("PBioSQL").trust()
        trust.distrust_row("U", (2, 5)).distrust_peer("PuBio")
        assert trust.of("B", (3, 2)) is True  # m1 path from GUS survives

    def test_scope_repr(self):
        assert "P1" in repr(small_cdss().peer("P1").trust())


class TestDeprecatedFacade:
    """The pre-v2 string-keyed facade still works but warns."""

    def test_insert_instance_delete_warn_and_work(self):
        cdss = small_cdss()
        with pytest.warns(DeprecationWarning, match="insert"):
            cdss.insert("R", (1,))
        cdss.update_exchange()
        with pytest.warns(DeprecationWarning, match="instance"):
            assert cdss.instance("S") == {(1,)}
        with pytest.warns(DeprecationWarning, match="delete"):
            cdss.delete("R", (1,))
        cdss.update_exchange()
        with pytest.warns(DeprecationWarning):
            assert cdss.instance("S") == frozenset()

    def test_certain_instance_warns(self):
        cdss = small_cdss()
        with pytest.warns(DeprecationWarning, match="certain_instance"):
            assert cdss.certain_instance("S") == frozenset()

    def test_provenance_of_warns_and_matches_view(self):
        cdss = small_cdss()
        cdss.peer("P1").insert("R", (1,))
        cdss.update_exchange()
        with pytest.warns(DeprecationWarning, match="provenance_of"):
            old = cdss.provenance_of("S", (1,))
        assert repr(old) == repr(cdss.relation("S").provenance((1,)))

    def test_trust_facade_warns_and_matches_scope(self):
        cdss = small_cdss()
        with pytest.warns(DeprecationWarning, match="set_trust_condition"):
            cdss.set_trust_condition("P2", "m", lambda row: row[0] > 0)
        with pytest.warns(DeprecationWarning, match="distrust_token"):
            cdss.distrust_token("P2", "R", (1,))
        with pytest.warns(DeprecationWarning, match="distrust_peer"):
            cdss.distrust_peer("P2", "P1")
        cdss.peer("P1").insert("R", (1,))
        cdss.update_exchange()
        with pytest.warns(DeprecationWarning, match="trust_of"):
            old = cdss.trust_of("P2", "S", (1,))
        assert old == cdss.peer("P2").trust().of("S", (1,))

    def test_new_api_does_not_warn(self, recwarn):
        cdss = small_cdss()
        with cdss.peer("P1").batch() as tx:
            tx.insert("R", (1,))
        cdss.update_exchange()
        cdss.relation("S").to_rows()
        cdss.peer("P2").trust().of("S", (1,))
        # REPRO_STRATEGY=incremental/dred (CI's legacy-shim job) is an
        # explicit opt-in to a deprecated strategy name, so the strategy
        # shim's warning is expected there — everything else must be quiet.
        legacy_env = os.environ.get("REPRO_STRATEGY") in ("incremental", "dred")
        deprecations = [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
            and not (legacy_env and "strategy=" in str(w.message))
        ]
        assert deprecations == []
