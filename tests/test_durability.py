"""Tests for the durability subsystem: WAL, checkpoints, crash recovery.

The crash-point matrix simulates process death at the three interesting
instants — after a checkpoint, losing the un-fsynced WAL tail, and mid-
record (a torn write) — and asserts the recovered node serves *byte-
identical certain answers* to a clean in-memory reference that performed
the surviving operations, without ever running a full recompute (checked
through the exchange-report strategy counters and the node's replay
counters).
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import CDSS, DurableNode, DurabilitySpec, SystemSpec, WriteAheadLog
from repro.durability.wal import read_segment
from repro.serve.client import ServeClient
from repro.storage.instance import StorageError


def paper_spec() -> SystemSpec:
    """The running example (with m3, so labeled nulls + provenance)."""
    cdss = CDSS("dur")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    return cdss.to_spec()


def run_script(cdss: CDSS, publish, publishes: int, stage_tail: bool):
    """The scripted workload the crash matrix replays at various depths.

    ``publish`` is either ``node.publish`` or ``cdss.update_exchange`` so
    the same script drives both the durable node and the in-memory
    reference.  ``publishes`` ∈ {1, 2, 3} selects how far to run;
    ``stage_tail`` stages one final unpublished edit.
    """
    assert 1 <= publishes <= 3
    publish()  # the spec's seed edits
    if publishes >= 2:
        with cdss.peer("PGUS").batch() as tx:
            tx.insert("G", (7, 8, 9))
        publish()
    if publishes >= 3:
        with cdss.peer("PBioSQL").batch() as tx:
            tx.delete("B", (3, 2))
        publish()
    if stage_tail:
        cdss.peer("PGUS").insert("G", (5, 5, 5))


def certain_state(cdss: CDSS) -> dict:
    """Byte-comparable certain answers for every user relation."""
    return {
        relation: sorted(cdss.relation(relation).certain(), key=repr)
        for relation in cdss.relations()
    }


def reference_state(publishes: int, stage_tail: bool) -> dict:
    cdss = paper_spec().build()
    run_script(cdss, cdss.update_exchange, publishes, stage_tail)
    return certain_state(cdss)


def assert_no_recompute(node: DurableNode) -> None:
    strategies = [report.strategy for report in node.cdss.exchange_reports]
    assert strategies, "recovery should have replayed at least one publish"
    assert "recompute" not in strategies


def newest_wal_segment(data_dir: Path) -> Path:
    segments = [
        path
        for path in sorted((data_dir / "wal").glob("wal-*.log"))
        if path.stat().st_size > 0
    ]
    assert segments, "expected a non-empty WAL segment"
    return segments[-1]


def drop_last_record(path: Path, partial: bool = False) -> None:
    """Simulate a crash while writing the final WAL record.

    ``partial=False`` drops the whole last line (died *before* the write
    hit disk); ``partial=True`` leaves half of it behind (torn write).
    """
    data = path.read_bytes()
    assert data.endswith(b"\n")
    cut = data.rindex(b"\n", 0, len(data) - 1) + 1 if data.count(b"\n") > 1 else 0
    tail = data[cut:]
    if partial:
        data = data[:cut] + tail[: max(1, len(tail) // 2)]
    else:
        data = data[:cut]
    path.write_bytes(data)


# ---------------------------------------------------------------------------
# WAL framing
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_read_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append("edits", {"peer": "P", "entries": []}) == 1
            assert wal.append("publish", {"peers": ["P"]}) == 2
        reopened = WriteAheadLog(tmp_path)
        records = list(reopened.records())
        assert [(r.seq, r.kind) for r in records] == [
            (1, "edits"),
            (2, "publish"),
        ]
        assert records[1].body == {"peers": ["P"]}
        assert reopened.last_seq == 2

    def test_after_seq_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for index in range(5):
            wal.append("edits", {"i": index})
        assert [r.seq for r in wal.records(after_seq=3)] == [4, 5]

    def test_torn_tail_is_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("edits", {"i": 1})
        wal.append("edits", {"i": 2})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        drop_last_record(segment, partial=True)
        reopened = WriteAheadLog(tmp_path)
        assert [r.body["i"] for r in reopened.records()] == [1]
        assert reopened.last_seq == 1
        # New appends go to a fresh segment past the torn tail.
        assert reopened.append("edits", {"i": 3}) == 2
        assert [r.body["i"] for r in reopened.records()] == [1, 3]

    def test_checksum_corruption_ends_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("edits", {"i": 1})
        wal.append("edits", {"i": 2})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        data = segment.read_bytes()
        # Flip one payload byte of the FIRST record: its crc fails, and
        # replay must stop there rather than skip over the hole.
        index = data.index(b'"i":1')
        segment.write_bytes(
            data[:index] + b'"i":7' + data[index + 5 :]
        )
        assert list(WriteAheadLog(tmp_path).records()) == []

    def test_rotate_prunes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("edits", {"i": 1})
        wal.append("edits", {"i": 2})
        pruned = wal.rotate(retain_after_seq=2)
        assert pruned == 1
        wal.append("edits", {"i": 3})
        assert [r.seq for r in wal.records()] == [3]
        # A rotation that covers nothing keeps the segment.
        assert wal.rotate(retain_after_seq=0) == 0
        assert [r.seq for r in wal.records()] == [3]

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(tmp_path, fsync="sometimes")
        WriteAheadLog(tmp_path, fsync="never").close()

    def test_read_segment_tolerates_garbage(self, tmp_path):
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(b"deadbeef not-json\n")
        assert read_segment(path) == []


# ---------------------------------------------------------------------------
# DurableNode round trips
# ---------------------------------------------------------------------------


class TestDurableNode:
    def test_crash_recovery_replays_tail_without_recompute(self, tmp_path):
        node = DurableNode.create(paper_spec(), tmp_path / "node")
        run_script(node.cdss, node.publish, publishes=3, stage_tail=True)
        expected = certain_state(node.cdss)
        version = node.cdss.system().version
        # Crash: no close(), no checkpoint — only the WAL survives.
        node.wal.close()
        node.store.close()

        recovered = DurableNode.open(tmp_path / "node")
        assert recovered.recovered
        assert recovered.replayed_publish_records == 3
        assert recovered.replayed_edit_records >= 3
        assert_no_recompute(recovered)
        assert certain_state(recovered.cdss) == expected
        assert certain_state(recovered.cdss) == reference_state(3, True)
        assert recovered.cdss.pending_edits() == 1
        # Change-stream versions continue the pre-crash sequence (the
        # serving tier held no subscription here, so replay may not
        # undershoot — only match or exceed).
        assert recovered.cdss.system().version >= version
        recovered.close()

    def test_recovered_node_resumes_incrementally(self, tmp_path):
        node = DurableNode.create(paper_spec(), tmp_path / "node")
        run_script(node.cdss, node.publish, publishes=2, stage_tail=False)
        node.wal.close()
        node.store.close()
        recovered = DurableNode.open(tmp_path / "node")
        # The staged tail publishes on the recovered node...
        with recovered.cdss.peer("PBioSQL").batch() as tx:
            tx.delete("B", (3, 2))
        recovered.publish()
        assert certain_state(recovered.cdss) == reference_state(3, False)
        recovered.close()
        # ...and survives the NEXT crash/restart cycle too.
        final = DurableNode.open(tmp_path / "node")
        assert final.replayed_publish_records == 0  # graceful close
        assert certain_state(final.cdss) == reference_state(3, False)
        final.close()

    def test_checkpoint_cadence(self, tmp_path):
        node = DurableNode.create(
            paper_spec(), tmp_path / "node", checkpoint_every=2
        )
        assert node.checkpoints == 1  # the initial checkpoint
        node.publish()
        assert node.checkpoints == 1
        node.publish()
        assert node.checkpoints == 2  # cadence hit
        assert list(node.wal.records()) == []  # pruned up to the checkpoint
        assert node.wal.last_seq == 2  # but the sequence never resets
        node.close(checkpoint=False)

    def test_batch_commits_are_wal_logged(self, tmp_path):
        node = DurableNode.create(paper_spec(), tmp_path / "node")
        before = node.wal.last_seq
        with node.cdss.peer("PGUS").batch() as tx:
            tx.insert("G", (7, 8, 9))
            tx.insert("G", (8, 9, 10))
        assert node.wal.last_seq == before + 1  # one record per commit
        records = list(node.wal.records(after_seq=before))
        assert records[0].kind == "edits"
        assert len(records[0].body["entries"]) == 2
        node.close(checkpoint=False)

    def test_create_then_open_guards(self, tmp_path):
        node = DurableNode.create(paper_spec(), tmp_path / "node")
        node.close()
        with pytest.raises(StorageError):
            DurableNode.create(paper_spec(), tmp_path / "node")
        with pytest.raises(StorageError):
            DurableNode.open(tmp_path / "fresh")
        # launch() picks the right constructor either way.
        opened = DurableNode.launch(paper_spec(), tmp_path / "node")
        assert opened.recovered
        opened.close()
        created = DurableNode.launch(paper_spec(), tmp_path / "fresh")
        assert not created.recovered
        created.close()

    def test_durability_spec_roundtrip(self, tmp_path):
        spec = paper_spec()
        from dataclasses import replace

        durable = replace(
            spec,
            durability=DurabilitySpec(
                path=str(tmp_path / "node"), fsync="never", checkpoint_every=4
            ),
        )
        loaded = SystemSpec.from_json(durable.to_json())
        assert loaded.durability == durable.durability
        assert SystemSpec.from_json(spec.to_json()).durability is None
        from repro import SpecError

        with pytest.raises(SpecError):
            DurabilitySpec(fsync="sometimes")
        with pytest.raises(SpecError):
            DurabilitySpec(checkpoint_every=-1)
        with pytest.raises(SpecError):
            SystemSpec.from_dict(
                {**spec.to_dict(), "durability": {"surprise": 1}}
            )


# ---------------------------------------------------------------------------
# The crash-point matrix
# ---------------------------------------------------------------------------


class TestCrashMatrix:
    """Kill the node at each interesting instant; recovery must serve
    byte-identical certain answers to a clean reference."""

    def _crashed_node(self, tmp_path, publishes=3, stage_tail=False):
        node = DurableNode.create(paper_spec(), tmp_path / "node")
        run_script(node.cdss, node.publish, publishes, stage_tail)
        return node

    def test_kill_after_checkpoint(self, tmp_path):
        node = self._crashed_node(tmp_path)
        node.checkpoint()
        node.wal.close()
        node.store.close()
        recovered = DurableNode.open(tmp_path / "node")
        # Everything is in the checkpoint: nothing to replay.
        assert recovered.replayed_publish_records == 0
        assert recovered.replayed_edit_records == 0
        assert certain_state(recovered.cdss) == reference_state(3, False)
        recovered.close()

    def test_kill_before_fsync_loses_only_the_tail(self, tmp_path):
        """The final publish record never reached disk: the node comes
        back at the previous publish, with the tail edits re-staged."""
        node = self._crashed_node(tmp_path)
        node.wal.close()
        node.store.close()
        drop_last_record(newest_wal_segment(tmp_path / "node"))
        recovered = DurableNode.open(tmp_path / "node")
        assert recovered.replayed_publish_records == 2
        assert_no_recompute(recovered)
        # The third publish is gone, but its edits record survived: the
        # deletion is staged, invisible until the next publish.
        assert recovered.cdss.pending_edits() == 1
        assert certain_state(recovered.cdss) == reference_state(2, False)
        recovered.publish()
        assert certain_state(recovered.cdss) == reference_state(3, False)
        recovered.close()

    def test_kill_mid_record_tolerates_torn_write(self, tmp_path):
        node = self._crashed_node(tmp_path)
        node.wal.close()
        node.store.close()
        drop_last_record(newest_wal_segment(tmp_path / "node"), partial=True)
        recovered = DurableNode.open(tmp_path / "node")
        assert recovered.replayed_publish_records == 2
        assert_no_recompute(recovered)
        assert certain_state(recovered.cdss) == reference_state(2, False)
        recovered.close()


# ---------------------------------------------------------------------------
# SIGKILL a durable serve node (subprocess, end to end)
# ---------------------------------------------------------------------------


class TestServeRecovery:
    def _boot(self, spec_path, data_dir):
        repo_root = Path(__file__).resolve().parent.parent
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(spec_path),
                "--port",
                "0",
                "--data-dir",
                str(data_dir),
            ],
            cwd=repo_root,
            env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        banner = proc.stdout.readline()
        assert "repro-serve listening on " in banner, banner
        return proc, banner.strip().rsplit(" ", 1)[-1]

    def test_sigkill_then_restart_serves_identical_answers(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        paper_spec().save(spec_path)
        data_dir = tmp_path / "node"
        proc, url = self._boot(spec_path, data_dir)
        try:
            with ServeClient.from_url(url, timeout=60) as client:
                client.insert("G", (7, 8, 9))
                client.publish()
                before = client.query(
                    "ans(i, n) :- B(i, n)", order=["i", "n"]
                )["rows"]
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        proc, url = self._boot(spec_path, data_dir)
        try:
            with ServeClient.from_url(url, timeout=60) as client:
                after = client.query(
                    "ans(i, n) :- B(i, n)", order=["i", "n"]
                )["rows"]
                durability = client.stats()["durability"]
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
        assert after == before
        assert durability["recovered"]
        # WAL-tail replay, not recompute: both the seed publish and the
        # client's publish came back from the log.
        assert durability["replayed_publish_records"] == 2
        assert durability["replayed_edit_records"] >= 1
