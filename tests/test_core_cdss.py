"""Tests for the CDSS facade: configuration, editing, reconfiguration."""

import pytest

from repro import CDSS, RelationSchema
from repro.core import STRATEGY_RECOMPUTE
from repro.provenance.graph import DerivationTree
from repro.schema import SchemaError


def small_cdss() -> CDSS:
    cdss = CDSS("t")
    cdss.add_peer("P1", {"R": ("a",)})
    cdss.add_peer("P2", {"S": ("a",)})
    cdss.add_mapping("m", "R(x) -> S(x)")
    return cdss


class TestConfiguration:
    def test_duplicate_peer_rejected(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            cdss.add_peer("P1", {"X": ("a",)})

    def test_duplicate_relation_across_peers_rejected(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            cdss.add_peer("P3", {"R": ("a",)})

    def test_duplicate_mapping_rejected(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            cdss.add_mapping("m", "S(x) -> R(x)")

    def test_relation_schemas_accepted_directly(self):
        cdss = CDSS()
        cdss.add_peer("P", [RelationSchema("R", ("a", "b"))])
        assert cdss.internal_schema.arity_of("R") == 2

    def test_unknown_relation_in_edit_rejected(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            cdss.insert("Nope", (1,))

    def test_unknown_peer_rejected(self):
        cdss = small_cdss()
        with pytest.raises(SchemaError):
            cdss.distrust_peer("Nope", "P1")

    def test_peers_and_mappings_listing(self):
        cdss = small_cdss()
        assert cdss.peers() == ("P1", "P2")
        assert [m.name for m in cdss.mappings()] == ["m"]

    def test_repr(self):
        assert "2 peers" in repr(small_cdss())


class TestEditingAndExchange:
    def test_pending_edits_counted(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.delete("R", (2,))
        assert cdss.pending_edits() == 2
        cdss.update_exchange()
        assert cdss.pending_edits() == 0

    def test_strategy_override_per_exchange(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        report = cdss.update_exchange(strategy=STRATEGY_RECOMPUTE)
        assert report.strategy == STRATEGY_RECOMPUTE

    def test_exchange_reports_accumulate(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.update_exchange()
        cdss.insert("R", (2,))
        cdss.update_exchange()
        assert len(cdss.exchange_reports) == 2

    def test_recompute_entry_point(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.update_exchange()
        report = cdss.recompute()
        assert report.strategy == STRATEGY_RECOMPUTE
        assert cdss.instance("S") == {(1,)}


class TestReconfiguration:
    def test_add_mapping_after_data_preserves_base(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.update_exchange()
        # Reconfigure: add a peer and a new mapping; base data carries over.
        cdss.add_peer("P3", {"T": ("a",)})
        cdss.add_mapping("m2", "S(x) -> T(x)")
        assert cdss.instance("T") == {(1,)}
        assert cdss.instance("S") == {(1,)}

    def test_trust_change_after_data_recomputes(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.insert("R", (2,))
        cdss.update_exchange()
        assert cdss.instance("S") == {(1,), (2,)}
        cdss.set_trust_condition("P2", "m", lambda row: row[0] % 2 == 0)
        assert cdss.instance("S") == {(2,)}
        # Base data survived the rebuild.
        assert cdss.instance("R") == {(1,), (2,)}

    def test_rejections_survive_reconfiguration(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.update_exchange()
        cdss.delete("S", (1,))  # rejection at P2
        cdss.update_exchange()
        cdss.add_peer("P3", {"T": ("a",)})
        cdss.add_mapping("m2", "S(x) -> T(x)")
        assert cdss.instance("S") == frozenset()
        assert cdss.instance("T") == frozenset()


class TestProvenanceAccess:
    def test_derivation_trees_via_graph(self):
        cdss = CDSS()
        cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
        cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
        cdss.add_peer("PuBio", {"U": ("nam", "can")})
        cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
        cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
        cdss.insert("G", (3, 5, 2))
        cdss.insert("B", (3, 5))
        cdss.insert("U", (2, 5))
        cdss.update_exchange()
        trees = cdss.provenance_graph().derivation_trees("B", (3, 2))
        assert len(trees) == 2
        mappings = sorted(t.mapping for t in trees)
        assert mappings == ["m1", "m4"]
        m1_tree = next(t for t in trees if t.mapping == "m1")
        assert m1_tree.leaves() == (("G", (3, 5, 2)),)
        m4_tree = next(t for t in trees if t.mapping == "m4")
        assert set(m4_tree.leaves()) == {("B", (3, 5)), ("U", (2, 5))}
        assert m4_tree.size() == 3
        assert m4_tree.depth() == 2

    def test_derivation_trees_cyclic_bounded(self):
        cdss = small_cdss()
        cdss.add_mapping("m_back", "S(x) -> R(x)")
        cdss.insert("R", (1,))
        cdss.update_exchange()
        trees = cdss.provenance_graph().derivation_trees(
            "S", (1,), max_depth=4, limit=10
        )
        assert trees  # at least the direct derivation
        assert len(trees) <= 10
        # Smallest tree first: R(1) local -> S(1) via m.
        assert trees[0].size() == 2

    def test_base_tuple_tree_is_leaf(self):
        cdss = small_cdss()
        cdss.insert("R", (1,))
        cdss.update_exchange()
        trees = cdss.provenance_graph().derivation_trees("R", (1,))
        assert trees[0] == DerivationTree(("R", (1,)))
        assert trees[0].is_leaf
